//! Energy accounting over executed schedules.

use crate::schedule::Schedule;
use flexer_arch::{EnergyBreakdown, EnergyModel};
use flexer_tiling::Dfg;

/// Computes the energy breakdown of `schedule` executing `dfg` under
/// `model`:
///
/// * **DRAM** — every transferred byte (loads, spills, stores);
/// * **SPM** — every transferred byte touches the buffer once, and
///   every compute operation reads its operands from and writes its
///   accumulator to the buffer;
/// * **compute** — one MAC cost per multiply-accumulate of the DFG.
///
/// Compute energy is schedule-independent for a fixed tiling, so the
/// *difference* between two schedules of the same DFG is entirely in
/// their memory terms — the quantity Flexer's scheduler minimizes.
///
/// # Examples
///
/// ```
/// use flexer_arch::{ArchConfig, ArchPreset, EnergyModel, SystolicModel};
/// use flexer_model::ConvLayer;
/// use flexer_sim::{schedule_energy, ScheduleBuilder};
/// use flexer_tiling::{Dataflow, Dfg, TilingFactors};
///
/// let arch = ArchConfig::preset(ArchPreset::Arch1);
/// let model = SystolicModel::new(&arch);
/// let layer = ConvLayer::new("e", 16, 8, 8, 16)?;
/// let factors = TilingFactors::normalized(&layer, 2, 1, 1, 1);
/// let dfg = Dfg::build(&layer, factors, Dataflow::Kcs, &model, &arch)?;
///
/// // A minimal serial execution of the DFG.
/// let mut builder = ScheduleBuilder::new(1);
/// let mut clock = 0;
/// for op in dfg.ops() {
///     let (_, end) = builder.record_compute(op.id(), 0, clock, op.latency())?;
///     clock = end;
/// }
/// let sched = builder.finish();
///
/// let energy = schedule_energy(&dfg, &sched, &EnergyModel::default());
/// assert!(energy.compute_pj > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn schedule_energy(dfg: &Dfg, schedule: &Schedule, model: &EnergyModel) -> EnergyBreakdown {
    let dram_bytes = schedule.transfer_bytes();

    // SPM traffic: one buffer-side access per transferred byte, plus
    // operand reads and accumulator writes of every compute op.
    let mut spm_bytes = dram_bytes;
    for s in schedule.compute() {
        let op = dfg.op(s.op);
        for tile in op.reads() {
            spm_bytes += dfg.tile_bytes(tile);
        }
        spm_bytes += dfg.tile_bytes(op.output());
    }

    let macs: u64 = schedule.compute().iter().map(|s| dfg.op_macs(s.op)).sum();

    EnergyBreakdown {
        dram_pj: dram_bytes as f64 * model.dram_pj_per_byte(),
        spm_pj: spm_bytes as f64 * model.spm_pj_per_byte(),
        compute_pj: macs as f64 * model.mac_pj(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{MemOpKind, ScheduleBuilder};
    use crate::traffic::TrafficClass;
    use flexer_arch::{ArchConfig, ArchPreset, SystolicModel};
    use flexer_model::ConvLayer;
    use flexer_tiling::{Dataflow, TilingFactors};

    fn fixture() -> (Dfg, ArchConfig) {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let layer = ConvLayer::new("e", 16, 8, 8, 16).unwrap();
        let factors = TilingFactors::normalized(&layer, 2, 2, 1, 1);
        let model = SystolicModel::new(&arch);
        let dfg = Dfg::build(&layer, factors, Dataflow::Kcs, &model, &arch).unwrap();
        (dfg, arch)
    }

    fn compute_only_schedule(dfg: &Dfg) -> Schedule {
        let mut b = ScheduleBuilder::new(1);
        let mut clock = 0;
        for op in dfg.ops() {
            let (_, end) = b.record_compute(op.id(), 0, clock, op.latency()).unwrap();
            clock = end;
        }
        b.finish()
    }

    #[test]
    fn compute_energy_matches_layer_macs() {
        let (dfg, _) = fixture();
        let sched = compute_only_schedule(&dfg);
        let e = schedule_energy(&dfg, &sched, &EnergyModel::new(0.0, 0.0, 1.0));
        let macs: u64 = dfg.ops().iter().map(|o| dfg.op_macs(o.id())).sum();
        assert_eq!(e.compute_pj, macs as f64);
        assert_eq!(e.dram_pj, 0.0);
        // Per-op MACs sum to the whole layer.
        assert_eq!(macs, dfg.layer().macs());
    }

    #[test]
    fn dram_energy_follows_traffic() {
        let (dfg, _) = fixture();
        let mut b = ScheduleBuilder::new(1);
        let t = dfg.ops()[0].input();
        b.record_mem_op(MemOpKind::Load, TrafficClass::Input, t, 1000, 10, None)
            .unwrap();
        for op in dfg.ops() {
            b.record_compute(op.id(), 0, 0, 1).unwrap();
        }
        let sched = b.finish();
        let e = schedule_energy(&dfg, &sched, &EnergyModel::new(2.0, 0.0, 0.0));
        assert_eq!(e.dram_pj, 2000.0);
    }

    #[test]
    fn spm_energy_counts_operand_accesses() {
        let (dfg, _) = fixture();
        let sched = compute_only_schedule(&dfg);
        let e = schedule_energy(&dfg, &sched, &EnergyModel::new(0.0, 1.0, 0.0));
        // Every op reads IN + WT (+ PS) and writes OT.
        let expect: u64 = dfg
            .ops()
            .iter()
            .map(|o| o.reads().map(|t| dfg.tile_bytes(t)).sum::<u64>() + dfg.tile_bytes(o.output()))
            .sum();
        assert_eq!(e.spm_pj, expect as f64);
    }

    #[test]
    fn lower_traffic_means_lower_energy() {
        // Two hand-built schedules of the same DFG, one with an extra
        // gratuitous reload: its energy must be strictly higher.
        let (dfg, _) = fixture();
        let lean = compute_only_schedule(&dfg);
        let mut b = ScheduleBuilder::new(1);
        let t = dfg.ops()[0].input();
        b.record_mem_op(MemOpKind::Load, TrafficClass::Input, t, 512, 10, None)
            .unwrap();
        let mut clock = 0;
        for op in dfg.ops() {
            let (_, end) = b.record_compute(op.id(), 0, clock, op.latency()).unwrap();
            clock = end;
        }
        let heavy = b.finish();
        let m = EnergyModel::default();
        assert!(
            schedule_energy(&dfg, &heavy, &m).total_pj()
                > schedule_energy(&dfg, &lean, &m).total_pj()
        );
    }
}
