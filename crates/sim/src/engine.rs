//! Resource timelines.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// A cycle computation overflowed `u64`.
///
/// Timelines advance monotonically; on adversarial architecture
/// configurations (enormous latencies, degenerate bandwidths) the
/// running cycle counts can exceed `u64::MAX`, which previously
/// wrapped silently in release builds and produced schedules whose
/// "end" preceded their "start". All arithmetic is checked now and
/// surfaces this typed error instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimelineError {
    /// `start + cycles` exceeded `u64::MAX` when issuing an operation.
    CycleOverflow {
        /// The start cycle of the operation being issued.
        start: u64,
        /// Its duration in cycles.
        cycles: u64,
    },
    /// A core's accumulated busy-cycle counter exceeded `u64::MAX`.
    BusyOverflow {
        /// The core whose counter overflowed.
        core: u32,
    },
}

impl fmt::Display for TimelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimelineError::CycleOverflow { start, cycles } => {
                write!(
                    f,
                    "cycle count overflow: start {start} + {cycles} cycles exceeds u64"
                )
            }
            TimelineError::BusyOverflow { core } => {
                write!(f, "busy-cycle counter of core {core} overflowed u64")
            }
        }
    }
}

impl Error for TimelineError {}

/// Availability timelines of the accelerator's contended resources:
/// one per NPU core plus the single shared DMA channel to off-chip
/// memory.
///
/// All memory operations serialize on the DMA channel (the paper's
/// architecture has one off-chip link of configurable bandwidth);
/// compute operations occupy exactly one core each.
///
/// # Examples
///
/// ```
/// use flexer_sim::Timeline;
///
/// let mut t = Timeline::new(2);
/// let (s1, e1) = t.issue_dma(50)?;
/// let (s2, e2) = t.issue_dma(30)?;
/// assert_eq!((s1, e1), (0, 50));
/// assert_eq!((s2, e2), (50, 80)); // serialized after the first
///
/// let (cs, ce) = t.issue_compute(0, e1, 100)?;
/// assert_eq!((cs, ce), (50, 150));
/// # Ok::<(), flexer_sim::TimelineError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timeline {
    core_free: Vec<u64>,
    core_busy: Vec<u64>,
    dma_free: u64,
}

impl Timeline {
    /// Creates timelines for `cores` NPU cores, all idle at cycle 0.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    #[must_use]
    pub fn new(cores: u32) -> Self {
        assert!(cores > 0, "at least one core required");
        Self {
            core_free: vec![0; cores as usize],
            core_busy: vec![0; cores as usize],
            dma_free: 0,
        }
    }

    /// Number of cores.
    #[must_use]
    pub fn cores(&self) -> u32 {
        self.core_free.len() as u32
    }

    /// The cycle at which `core` becomes free.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn core_free(&self, core: u32) -> u64 {
        self.core_free[core as usize]
    }

    /// Busy cycles accumulated on `core` so far.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn core_busy(&self, core: u32) -> u64 {
        self.core_busy[core as usize]
    }

    /// The core that becomes free earliest (lowest index on ties).
    #[must_use]
    pub fn earliest_core(&self) -> u32 {
        self.core_free
            .iter()
            .enumerate()
            .min_by_key(|(i, &f)| (f, *i))
            .map(|(i, _)| i as u32)
            .expect("at least one core")
    }

    /// The cycle at which the DMA channel becomes free.
    #[must_use]
    pub const fn dma_free(&self) -> u64 {
        self.dma_free
    }

    /// Issues a DMA transfer of `cycles` cycles at the earliest
    /// possible time; returns `(start, end)`.
    ///
    /// # Errors
    ///
    /// [`TimelineError::CycleOverflow`] if the end cycle exceeds
    /// `u64::MAX`.
    pub fn issue_dma(&mut self, cycles: u64) -> Result<(u64, u64), TimelineError> {
        self.issue_dma_after(0, cycles)
    }

    /// Issues a DMA transfer of `cycles` cycles starting no earlier
    /// than `earliest` (e.g. the cycle its data is produced); returns
    /// `(start, end)`.
    ///
    /// # Errors
    ///
    /// [`TimelineError::CycleOverflow`] if the end cycle exceeds
    /// `u64::MAX`.
    pub fn issue_dma_after(
        &mut self,
        earliest: u64,
        cycles: u64,
    ) -> Result<(u64, u64), TimelineError> {
        let start = self.dma_free.max(earliest);
        let end = start
            .checked_add(cycles)
            .ok_or(TimelineError::CycleOverflow { start, cycles })?;
        self.dma_free = end;
        Ok((start, end))
    }

    /// Issues a compute operation of `cycles` cycles on `core`,
    /// starting no earlier than `earliest` (data readiness) and no
    /// earlier than the core's availability; returns `(start, end)`.
    ///
    /// # Errors
    ///
    /// [`TimelineError::CycleOverflow`] if the end cycle exceeds
    /// `u64::MAX`; [`TimelineError::BusyOverflow`] if the core's busy
    /// counter does.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn issue_compute(
        &mut self,
        core: u32,
        earliest: u64,
        cycles: u64,
    ) -> Result<(u64, u64), TimelineError> {
        let idx = core as usize;
        let start = self.core_free[idx].max(earliest);
        let end = start
            .checked_add(cycles)
            .ok_or(TimelineError::CycleOverflow { start, cycles })?;
        let busy = self.core_busy[idx]
            .checked_add(cycles)
            .ok_or(TimelineError::BusyOverflow { core })?;
        self.core_free[idx] = end;
        self.core_busy[idx] = busy;
        Ok((start, end))
    }

    /// The latest cycle at which any resource is busy.
    #[must_use]
    pub fn horizon(&self) -> u64 {
        self.core_free
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(self.dma_free)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dma_serializes() {
        let mut t = Timeline::new(1);
        assert_eq!(t.issue_dma(10).unwrap(), (0, 10));
        assert_eq!(t.issue_dma(5).unwrap(), (10, 15));
        assert_eq!(t.dma_free(), 15);
    }

    #[test]
    fn cores_are_independent() {
        let mut t = Timeline::new(2);
        assert_eq!(t.issue_compute(0, 0, 100).unwrap(), (0, 100));
        assert_eq!(t.issue_compute(1, 0, 50).unwrap(), (0, 50));
        assert_eq!(t.core_free(0), 100);
        assert_eq!(t.core_free(1), 50);
    }

    #[test]
    fn compute_waits_for_data_and_core() {
        let mut t = Timeline::new(1);
        t.issue_compute(0, 0, 100).unwrap();
        // Data ready at 20 but the core is busy until 100.
        assert_eq!(t.issue_compute(0, 20, 10).unwrap(), (100, 110));
        // Core free at 110, data ready at 200.
        assert_eq!(t.issue_compute(0, 200, 10).unwrap(), (200, 210));
    }

    #[test]
    fn earliest_core_prefers_lowest_index_on_ties() {
        let mut t = Timeline::new(3);
        assert_eq!(t.earliest_core(), 0);
        t.issue_compute(0, 0, 10).unwrap();
        assert_eq!(t.earliest_core(), 1);
        t.issue_compute(1, 0, 10).unwrap();
        t.issue_compute(2, 0, 5).unwrap();
        assert_eq!(t.earliest_core(), 2);
    }

    #[test]
    fn busy_accounting_excludes_idle_gaps() {
        let mut t = Timeline::new(1);
        t.issue_compute(0, 100, 10).unwrap();
        assert_eq!(t.core_busy(0), 10);
        assert_eq!(t.core_free(0), 110);
    }

    #[test]
    fn horizon_covers_all_resources() {
        let mut t = Timeline::new(2);
        t.issue_compute(0, 0, 10).unwrap();
        t.issue_dma(500).unwrap();
        assert_eq!(t.horizon(), 500);
    }

    #[test]
    fn dma_after_respects_earliest_and_queue() {
        let mut t = Timeline::new(1);
        // Earliest in the future: waits.
        assert_eq!(t.issue_dma_after(100, 10).unwrap(), (100, 110));
        // Earliest in the past: queues behind the previous transfer.
        assert_eq!(t.issue_dma_after(50, 10).unwrap(), (110, 120));
    }

    #[test]
    fn dma_overflow_is_a_typed_error_not_a_wrap() {
        let mut t = Timeline::new(1);
        let err = t.issue_dma_after(u64::MAX - 5, 10).unwrap_err();
        assert!(matches!(err, TimelineError::CycleOverflow { .. }), "{err}");
        // The failed issue must not corrupt the timeline.
        assert_eq!(t.dma_free(), 0);
        assert_eq!(t.issue_dma(7).unwrap(), (0, 7));
    }

    #[test]
    fn compute_overflow_is_a_typed_error_not_a_wrap() {
        let mut t = Timeline::new(2);
        let err = t.issue_compute(1, u64::MAX - 1, 2).unwrap_err();
        assert!(matches!(err, TimelineError::CycleOverflow { .. }), "{err}");
        assert_eq!(t.core_free(1), 0);
        assert_eq!(t.core_busy(1), 0);
    }

    #[test]
    fn busy_overflow_is_detected() {
        let mut t = Timeline::new(1);
        t.issue_compute(0, 0, u64::MAX).unwrap();
        // A second op of any length overflows the end cycle first; the
        // busy counter path needs a fresh timeline whose busy sum, but
        // not end cycle, would wrap. End == busy here, so CycleOverflow
        // fires; both are rejected rather than wrapped.
        let err = t.issue_compute(0, 0, 1).unwrap_err();
        assert!(matches!(
            err,
            TimelineError::CycleOverflow { .. } | TimelineError::BusyOverflow { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = Timeline::new(0);
    }

    #[test]
    fn errors_render() {
        let e = TimelineError::CycleOverflow {
            start: 9,
            cycles: 1,
        };
        assert!(e.to_string().contains('9'));
        let e = TimelineError::BusyOverflow { core: 3 };
        assert!(e.to_string().contains('3'));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        // The hardened invariant: every successful issue satisfies
        // `end >= start >= earliest`, and every overflow is reported
        // as a typed error instead of wrapping.
        fn issued_ops_never_end_before_they_start(
            earliest in prop_oneof![0u64..1_000_000, u64::MAX - 1_000..=u64::MAX],
            cycles in prop_oneof![0u64..1_000_000, u64::MAX - 1_000..=u64::MAX],
            core in 0u32..4,
        ) {
            let mut t = Timeline::new(4);
            match t.issue_dma_after(earliest, cycles) {
                Ok((start, end)) => {
                    prop_assert!(start >= earliest);
                    prop_assert!(end >= start);
                    prop_assert_eq!(end - start, cycles);
                }
                Err(e) => prop_assert!(matches!(e, TimelineError::CycleOverflow { .. })),
            }
            match t.issue_compute(core, earliest, cycles) {
                Ok((start, end)) => {
                    prop_assert!(start >= earliest);
                    prop_assert!(end >= start);
                    prop_assert!(t.core_busy(core) == cycles);
                }
                Err(e) => prop_assert!(matches!(
                    e,
                    TimelineError::CycleOverflow { .. } | TimelineError::BusyOverflow { .. }
                )),
            }
            prop_assert!(t.horizon() >= t.dma_free());
        }
    }
}
