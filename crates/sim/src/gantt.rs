//! Schedule → execution-timeline trace.
//!
//! Converts a finished [`Schedule`] into a [`Trace`] with one lane per
//! NPU core plus one lane for the shared DMA channel, each span's
//! boundaries being the operation's start/end *cycles*. Loaded into a
//! Chrome-trace viewer this is the per-core Gantt chart of the
//! execution — the machine-readable sibling of
//! [`crate::render_gantt`].
//!
//! Timestamps are cycle numbers, so the trace uses
//! [`ClockMode::Wall`] (explicit, possibly-repeating timestamps), yet
//! it is still byte-stable across runs: cycles come from the
//! deterministic schedule, never from a host clock. Spans within a
//! lane are emitted in `(start, end)` order; an overlapping start
//! (impossible for well-formed schedules, which serialize each core
//! and the DMA channel) would be clamped forward rather than breaking
//! lane monotonicity.

use crate::schedule::{MemOpKind, Schedule};
use flexer_trace::{ClockMode, Trace, TraceConfig, Tracer};

/// Renders `schedule` as a per-core execution-timeline trace named
/// `name`. Lane `i < cores` carries core `i`'s compute spans; the last
/// lane carries the DMA channel's transfers.
#[must_use]
pub fn schedule_trace(schedule: &Schedule, name: &str) -> Trace {
    let config = TraceConfig {
        clock: ClockMode::Wall,
        ..TraceConfig::default()
    };
    let tracer = Tracer::new(config);
    let mut lanes = Vec::new();
    for core in 0..schedule.cores() {
        let mut lane = tracer.lane(core, format!("{name}/core{core}"));
        let mut ops: Vec<_> = schedule
            .compute()
            .iter()
            .filter(|o| o.core == core)
            .collect();
        ops.sort_by_key(|o| (o.start, o.end));
        for op in ops {
            let guard = lane.enter_at(op.start, "compute");
            lane.attr("op", op.op.to_string());
            lane.attr("cycles", op.end - op.start);
            lane.exit_at(op.end, guard);
        }
        lanes.push(lane);
    }
    let mut dma = tracer.lane(schedule.cores(), format!("{name}/dma"));
    let mut mem: Vec<_> = schedule.mem_ops().iter().collect();
    mem.sort_by_key(|m| (m.start, m.end));
    for m in mem {
        let span_name = match m.kind {
            MemOpKind::Load => "load",
            MemOpKind::Spill => "spill",
            MemOpKind::Store => "store",
        };
        let guard = dma.enter_at(m.start, span_name);
        dma.attr("tile", m.tile.to_string());
        dma.attr("class", m.class.to_string());
        dma.attr("bytes", m.bytes);
        if let Some(op) = m.for_op {
            dma.attr("for_op", op.to_string());
        }
        dma.exit_at(m.end, guard);
    }
    lanes.push(dma);
    Trace::from_lanes(config, lanes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ScheduleBuilder;
    use crate::traffic::TrafficClass;
    use flexer_tiling::{OpId, TileId};

    fn sample() -> Schedule {
        let mut b = ScheduleBuilder::new(2);
        let t0 = TileId::Input { c: 0, s: 0 };
        let t1 = TileId::Input { c: 0, s: 1 };
        let (_, d0) = b
            .record_mem_op(
                MemOpKind::Load,
                TrafficClass::Input,
                t0,
                64,
                10,
                Some(OpId::new(0)),
            )
            .unwrap();
        let (_, d1) = b
            .record_mem_op(
                MemOpKind::Load,
                TrafficClass::Input,
                t1,
                64,
                10,
                Some(OpId::new(1)),
            )
            .unwrap();
        b.record_compute(OpId::new(0), 0, d0, 100).unwrap();
        b.record_compute(OpId::new(1), 1, d1, 80).unwrap();
        b.finish()
    }

    #[test]
    fn trace_has_one_lane_per_core_plus_dma() {
        let trace = schedule_trace(&sample(), "s");
        trace.check().unwrap();
        assert_eq!(trace.lanes().len(), 3);
        assert_eq!(trace.lanes()[0].name, "s/core0");
        assert_eq!(trace.lanes()[2].name, "s/dma");
        let summary = trace.summary();
        assert_eq!(summary.spans, 4, "2 computes + 2 loads");
    }

    #[test]
    fn span_boundaries_are_schedule_cycles() {
        let schedule = sample();
        let trace = schedule_trace(&schedule, "s");
        let core0 = &trace.lanes()[0];
        assert_eq!(core0.events[0].ts, schedule.compute()[0].start);
        assert_eq!(core0.events[1].ts, schedule.compute()[0].end);
    }

    #[test]
    fn trace_is_deterministic() {
        let a = schedule_trace(&sample(), "s");
        let b = schedule_trace(&sample(), "s");
        assert_eq!(
            flexer_trace::text::render_tree(&a),
            flexer_trace::text::render_tree(&b)
        );
    }

    #[test]
    fn empty_schedule_gives_empty_trace() {
        let schedule = ScheduleBuilder::new(2).finish();
        let trace = schedule_trace(&schedule, "s");
        assert!(trace.is_empty());
    }
}
