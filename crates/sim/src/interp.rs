//! Program-level abstract machine: executes a lowered command stream
//! against a byte-accurate SPM model and cross-checks it against the
//! analytically built [`Schedule`].
//!
//! The schedulers in `flexer-sched` produce two artifacts per layer:
//! the timed [`Schedule`] (latency, traffic, utilization — what the
//! search optimizes) and a lowered command program with concrete
//! global-buffer addresses (what a sequencer would execute). Nothing
//! in the analytical path guarantees the two agree, and the spill
//! heuristics of paper Algorithm 2 are exactly the kind of imperative
//! bookkeeping that drifts silently. This module closes the loop:
//!
//! * [`interpret_program`] runs the commands one by one on an abstract
//!   machine tracking address-range occupancy, residency, data
//!   validity and dirty bits — rejecting out-of-bounds or overlapping
//!   placements, double placements, uses of absent or uninitialized
//!   data, spills of clean blocks, discards of dirty blocks (data
//!   loss), accumulation onto missing partial sums, executions out of
//!   dependency order, and unsaved dirty data at program end;
//! * [`differential_check`] compares what the interpreter *observed*
//!   (per-class DMA bytes and transfer counts, per-tile load counts,
//!   per-op core placement, compaction volume) against what the
//!   schedule *claims*, flagging any divergence between the two
//!   artifacts.
//!
//! The command vocabulary ([`SpmCommand`]) mirrors the lowered
//! program's: this crate sits below the scheduler, so the scheduler
//! converts its own command type into this one to be verified.

use crate::schedule::Schedule;
use crate::traffic::TrafficClass;
use flexer_tiling::{Dfg, OpId, TileId, TileKind};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// One command of a lowered program, as seen by the abstract machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpmCommand {
    /// Fetch a tile from DRAM into the buffer block at `address`.
    Load {
        /// The tile fetched.
        tile: TileId,
        /// Destination block address.
        address: u64,
        /// Transfer size.
        bytes: u64,
    },
    /// Write a dirty tile (partial sum) back to DRAM and free its
    /// block.
    Spill {
        /// The tile written back.
        tile: TileId,
        /// Source block address.
        address: u64,
        /// Transfer size.
        bytes: u64,
    },
    /// Drop a clean tile from the buffer (its data is still in DRAM).
    Discard {
        /// The tile dropped.
        tile: TileId,
        /// Its block address.
        address: u64,
        /// Its block size.
        bytes: u64,
    },
    /// Relocate a tile within the buffer (compaction copy). Batches of
    /// consecutive moves apply atomically.
    Move {
        /// The tile relocated.
        tile: TileId,
        /// Its byte size.
        bytes: u64,
        /// Old block address.
        from: u64,
        /// New block address.
        to: u64,
    },
    /// Reserve a block for a fresh accumulator tile (no data moves).
    Reserve {
        /// The accumulator tile.
        tile: TileId,
        /// Its block address.
        address: u64,
        /// Its block size.
        bytes: u64,
    },
    /// Run one tiled convolution on a core.
    Exec {
        /// The operation.
        op: OpId,
        /// The core it runs on.
        core: u32,
        /// Input tile address.
        input: u64,
        /// Weight tile address.
        weight: u64,
        /// Output / partial-sum tile address.
        output: u64,
        /// Whether the output block holds a partial sum to accumulate
        /// onto.
        accumulate: bool,
    },
    /// Write a finished output tile to DRAM (it stays resident).
    Store {
        /// The tile stored.
        tile: TileId,
        /// Source block address.
        address: u64,
        /// Transfer size.
        bytes: u64,
    },
    /// Gather an input tile from the cross-layer residency region into
    /// the buffer block at `address` — an on-chip copy: the DMA engine
    /// is busy but no DRAM bytes move. Legal only when the DFG was
    /// built with `input_resident`.
    GatherIn {
        /// The tile gathered.
        tile: TileId,
        /// Destination block address.
        address: u64,
        /// Transfer size.
        bytes: u64,
    },
    /// Scatter a finished output tile into the cross-layer residency
    /// region for the consumer layer — an on-chip copy replacing the
    /// DRAM store. Legal only when the DFG was built with
    /// `output_resident`.
    ScatterOut {
        /// The tile scattered.
        tile: TileId,
        /// Source block address.
        address: u64,
        /// Transfer size.
        bytes: u64,
    },
}

/// A violation found by [`interpret_program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterpError {
    /// A block extends past the buffer.
    OutOfBounds {
        /// The offending command index.
        index: usize,
        /// The tile being placed.
        tile: TileId,
    },
    /// A placement overlaps a live block.
    Overlap {
        /// The offending command index.
        index: usize,
        /// The tile being placed.
        tile: TileId,
        /// The tile already occupying the range.
        occupant: TileId,
    },
    /// A tile was placed while already resident.
    AlreadyResident {
        /// The offending command index.
        index: usize,
        /// The tile.
        tile: TileId,
    },
    /// A command operated on a tile that is not resident.
    NotResident {
        /// The offending command index.
        index: usize,
        /// The tile.
        tile: TileId,
    },
    /// A command named an address other than where the tile lives.
    AddressMismatch {
        /// The offending command index.
        index: usize,
        /// The tile.
        tile: TileId,
        /// Where the tile actually is.
        resident: u64,
        /// The address the command claimed.
        claimed: u64,
    },
    /// A command's byte count disagrees with the DFG's tile size.
    TileBytesMismatch {
        /// The offending command index.
        index: usize,
        /// The tile.
        tile: TileId,
        /// The DFG's size for it.
        expected: u64,
        /// The command's size.
        got: u64,
    },
    /// Data that was never written was read (exec operand or store of
    /// a reserved-but-never-computed block).
    UninitRead {
        /// The offending command index.
        index: usize,
        /// The uninitialized tile.
        tile: TileId,
    },
    /// A dirty block (unsaved partial sum) was discarded — data loss.
    DirtyDiscard {
        /// The offending command index.
        index: usize,
        /// The tile.
        tile: TileId,
    },
    /// A clean block was spilled — the write-back is bogus traffic.
    CleanSpill {
        /// The offending command index.
        index: usize,
        /// The tile.
        tile: TileId,
    },
    /// An exec named a core the machine does not have.
    BadCore {
        /// The offending command index.
        index: usize,
        /// The operation.
        op: OpId,
        /// The core named.
        core: u32,
    },
    /// An exec's accumulate flag disagrees with the DFG.
    AccumulateMismatch {
        /// The offending command index.
        index: usize,
        /// The operation.
        op: OpId,
    },
    /// An operation executed before its partial-sum predecessor.
    PredecessorNotExecuted {
        /// The offending command index.
        index: usize,
        /// The operation.
        op: OpId,
        /// Its predecessor.
        pred: OpId,
    },
    /// An exec named an operation outside the DFG.
    UnknownOp {
        /// The offending command index.
        index: usize,
        /// The operation.
        op: OpId,
    },
    /// Not every DFG operation executed exactly once.
    ExecCount {
        /// The operation.
        op: OpId,
        /// How often it ran.
        times: usize,
    },
    /// A dirty block survived to program end without being written
    /// back — its data is lost.
    UnsavedData {
        /// The tile.
        tile: TileId,
    },
    /// A residency command ran against a DFG whose residency plan does
    /// not enable that side (gather without `input_resident`, scatter
    /// without `output_resident`).
    ResidencyDisabled {
        /// The offending command index.
        index: usize,
        /// The tile.
        tile: TileId,
    },
    /// An input tile the plan keeps resident was loaded from DRAM —
    /// the compulsory-traffic saving the planner promised was not
    /// honored.
    ResidentDramLoad {
        /// The offending command index.
        index: usize,
        /// The tile.
        tile: TileId,
    },
    /// An output tile the plan keeps resident was stored to DRAM
    /// instead of scattered on-chip.
    ResidentDramStore {
        /// The offending command index.
        index: usize,
        /// The tile.
        tile: TileId,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::OutOfBounds { index, tile } => {
                write!(f, "command {index}: {tile} placed past the buffer end")
            }
            InterpError::Overlap {
                index,
                tile,
                occupant,
            } => {
                write!(
                    f,
                    "command {index}: {tile} overlaps live block of {occupant}"
                )
            }
            InterpError::AlreadyResident { index, tile } => {
                write!(f, "command {index}: {tile} placed while already resident")
            }
            InterpError::NotResident { index, tile } => {
                write!(f, "command {index}: {tile} is not resident")
            }
            InterpError::AddressMismatch {
                index,
                tile,
                resident,
                claimed,
            } => write!(
                f,
                "command {index}: {tile} lives at {resident:#x}, command claims {claimed:#x}"
            ),
            InterpError::TileBytesMismatch {
                index,
                tile,
                expected,
                got,
            } => write!(
                f,
                "command {index}: {tile} is {expected} B in the DFG, command says {got} B"
            ),
            InterpError::UninitRead { index, tile } => {
                write!(
                    f,
                    "command {index}: {tile} read before any data was written"
                )
            }
            InterpError::DirtyDiscard { index, tile } => {
                write!(
                    f,
                    "command {index}: dirty {tile} discarded — partial sum lost"
                )
            }
            InterpError::CleanSpill { index, tile } => {
                write!(
                    f,
                    "command {index}: clean {tile} spilled — bogus write-back"
                )
            }
            InterpError::BadCore { index, op, core } => {
                write!(f, "command {index}: {op} on nonexistent core {core}")
            }
            InterpError::AccumulateMismatch { index, op } => {
                write!(
                    f,
                    "command {index}: {op} accumulate flag disagrees with the DFG"
                )
            }
            InterpError::PredecessorNotExecuted { index, op, pred } => {
                write!(f, "command {index}: {op} ran before its predecessor {pred}")
            }
            InterpError::UnknownOp { index, op } => {
                write!(f, "command {index}: {op} is not in the DFG")
            }
            InterpError::ExecCount { op, times } => {
                write!(f, "{op} executed {times} times (expected exactly once)")
            }
            InterpError::UnsavedData { tile } => {
                write!(f, "dirty {tile} still resident at program end — data lost")
            }
            InterpError::ResidencyDisabled { index, tile } => {
                write!(
                    f,
                    "command {index}: residency transfer of {tile} but the plan does not keep that side resident"
                )
            }
            InterpError::ResidentDramLoad { index, tile } => {
                write!(
                    f,
                    "command {index}: resident input {tile} reloaded from DRAM"
                )
            }
            InterpError::ResidentDramStore { index, tile } => {
                write!(
                    f,
                    "command {index}: resident output {tile} stored to DRAM instead of scattered"
                )
            }
        }
    }
}

impl Error for InterpError {}

const fn class_index(class: TrafficClass) -> usize {
    match class {
        TrafficClass::Input => 0,
        TrafficClass::Weight => 1,
        TrafficClass::Psum => 2,
        TrafficClass::Output => 3,
    }
}

/// DRAM-to-SPM traffic class of a load, derived from the tile's kind:
/// reloading an output-kind tile is partial-sum traffic.
const fn load_class(kind: TileKind) -> TrafficClass {
    match kind {
        TileKind::Input => TrafficClass::Input,
        TileKind::Weight => TrafficClass::Weight,
        TileKind::Output => TrafficClass::Psum,
    }
}

/// What the abstract machine observed while executing a program.
///
/// Mirrors the accounting dimensions of the analytical schedule so
/// [`differential_check`] can compare the two artifacts field by
/// field.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InterpStats {
    class_bytes: [u64; 4],
    class_transfers: [u64; 4],
    loads_per_tile: BTreeMap<TileId, u32>,
    exec_core: BTreeMap<OpId, u32>,
    moves: u64,
    moved_bytes: u64,
    peak_bytes: u64,
    gather_bytes: u64,
    gather_transfers: u64,
    scatter_bytes: u64,
    scatter_transfers: u64,
}

impl InterpStats {
    /// DMA bytes the program moved in `class`.
    #[must_use]
    pub const fn class_bytes(&self, class: TrafficClass) -> u64 {
        self.class_bytes[class_index(class)]
    }

    /// DMA transfers the program issued in `class`.
    #[must_use]
    pub const fn class_transfers(&self, class: TrafficClass) -> u64 {
        self.class_transfers[class_index(class)]
    }

    /// Total DMA bytes over all classes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.class_bytes.iter().sum()
    }

    /// How often each tile was loaded.
    #[must_use]
    pub fn loads_per_tile(&self) -> &BTreeMap<TileId, u32> {
        &self.loads_per_tile
    }

    /// The core each operation executed on.
    #[must_use]
    pub fn exec_core(&self, op: OpId) -> Option<u32> {
        self.exec_core.get(&op).copied()
    }

    /// Number of operations executed.
    #[must_use]
    pub fn execs(&self) -> usize {
        self.exec_core.len()
    }

    /// Number of on-chip compaction copies.
    #[must_use]
    pub const fn moves(&self) -> u64 {
        self.moves
    }

    /// Bytes relocated by on-chip compaction copies.
    #[must_use]
    pub const fn moved_bytes(&self) -> u64 {
        self.moved_bytes
    }

    /// Peak buffer occupancy over the program, in bytes.
    #[must_use]
    pub const fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Bytes gathered from the cross-layer residency region (on-chip).
    #[must_use]
    pub const fn gather_bytes(&self) -> u64 {
        self.gather_bytes
    }

    /// Number of residency gathers.
    #[must_use]
    pub const fn gather_transfers(&self) -> u64 {
        self.gather_transfers
    }

    /// Bytes scattered into the cross-layer residency region (on-chip).
    #[must_use]
    pub const fn scatter_bytes(&self) -> u64 {
        self.scatter_bytes
    }

    /// Number of residency scatters.
    #[must_use]
    pub const fn scatter_transfers(&self) -> u64 {
        self.scatter_transfers
    }
}

/// One live block of the abstract SPM.
#[derive(Debug, Clone, Copy)]
struct Block {
    address: u64,
    bytes: u64,
    /// Whether the block holds data (loads and execs write it;
    /// `Reserve` leaves it uninitialized until the first exec).
    valid: bool,
    /// Whether the block holds data DRAM does not have.
    dirty: bool,
}

struct Machine<'a> {
    dfg: &'a Dfg,
    spm_bytes: u64,
    cores: u32,
    blocks: BTreeMap<TileId, Block>,
    used: u64,
    executed: Vec<usize>,
    stats: InterpStats,
}

impl<'a> Machine<'a> {
    fn new(dfg: &'a Dfg, spm_bytes: u64, cores: u32) -> Self {
        Self {
            dfg,
            spm_bytes,
            cores,
            blocks: BTreeMap::new(),
            used: 0,
            executed: vec![0; dfg.num_ops()],
            stats: InterpStats::default(),
        }
    }

    fn record_dma(&mut self, class: TrafficClass, bytes: u64) {
        self.stats.class_bytes[class_index(class)] += bytes;
        self.stats.class_transfers[class_index(class)] += 1;
    }

    fn check_bytes(&self, index: usize, tile: TileId, got: u64) -> Result<(), InterpError> {
        let expected = self.dfg.tile_bytes(tile);
        if got != expected {
            return Err(InterpError::TileBytesMismatch {
                index,
                tile,
                expected,
                got,
            });
        }
        Ok(())
    }

    /// Validates and inserts a new block; `valid` marks whether it
    /// carries data.
    fn place(
        &mut self,
        index: usize,
        tile: TileId,
        address: u64,
        bytes: u64,
        valid: bool,
    ) -> Result<(), InterpError> {
        if self.blocks.contains_key(&tile) {
            return Err(InterpError::AlreadyResident { index, tile });
        }
        let end = address
            .checked_add(bytes)
            .ok_or(InterpError::OutOfBounds { index, tile })?;
        if end > self.spm_bytes {
            return Err(InterpError::OutOfBounds { index, tile });
        }
        if let Some(occupant) = self.overlap(address, bytes) {
            return Err(InterpError::Overlap {
                index,
                tile,
                occupant,
            });
        }
        self.blocks.insert(
            tile,
            Block {
                address,
                bytes,
                valid,
                dirty: false,
            },
        );
        self.used += bytes;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.used);
        Ok(())
    }

    fn overlap(&self, address: u64, bytes: u64) -> Option<TileId> {
        self.blocks
            .iter()
            .find(|(_, b)| address < b.address + b.bytes && b.address < address + bytes)
            .map(|(t, _)| *t)
    }

    /// Looks up a resident block and checks the claimed address.
    fn resident(&self, index: usize, tile: TileId, claimed: u64) -> Result<Block, InterpError> {
        let block = *self
            .blocks
            .get(&tile)
            .ok_or(InterpError::NotResident { index, tile })?;
        if block.address != claimed {
            return Err(InterpError::AddressMismatch {
                index,
                tile,
                resident: block.address,
                claimed,
            });
        }
        Ok(block)
    }

    fn evict(&mut self, tile: TileId) {
        if let Some(b) = self.blocks.remove(&tile) {
            self.used -= b.bytes;
        }
    }
}

/// Executes `commands` — the lowered program of one scheduled layer —
/// on an abstract SPM of `spm_bytes` attached to `cores` NPU cores,
/// checking every machine-level invariant along the way.
///
/// # Errors
///
/// Returns the first [`InterpError`] encountered.
pub fn interpret_program(
    dfg: &Dfg,
    spm_bytes: u64,
    cores: u32,
    commands: &[SpmCommand],
) -> Result<InterpStats, InterpError> {
    let mut m = Machine::new(dfg, spm_bytes, cores);

    let mut i = 0;
    while i < commands.len() {
        let index = i;
        match commands[i] {
            SpmCommand::Load {
                tile,
                address,
                bytes,
            } => {
                if dfg.residency().input_resident && tile.kind() == TileKind::Input {
                    return Err(InterpError::ResidentDramLoad { index, tile });
                }
                m.check_bytes(index, tile, bytes)?;
                m.place(index, tile, address, bytes, true)?;
                m.record_dma(load_class(tile.kind()), bytes);
                *m.stats.loads_per_tile.entry(tile).or_default() += 1;
            }
            SpmCommand::GatherIn {
                tile,
                address,
                bytes,
            } => {
                if !dfg.residency().input_resident || tile.kind() != TileKind::Input {
                    return Err(InterpError::ResidencyDisabled { index, tile });
                }
                m.check_bytes(index, tile, bytes)?;
                m.place(index, tile, address, bytes, true)?;
                m.stats.gather_bytes += bytes;
                m.stats.gather_transfers += 1;
            }
            SpmCommand::Reserve {
                tile,
                address,
                bytes,
            } => {
                m.check_bytes(index, tile, bytes)?;
                m.place(index, tile, address, bytes, false)?;
            }
            SpmCommand::Spill {
                tile,
                address,
                bytes,
            } => {
                m.check_bytes(index, tile, bytes)?;
                let block = m.resident(index, tile, address)?;
                if !block.valid {
                    return Err(InterpError::UninitRead { index, tile });
                }
                if !block.dirty {
                    return Err(InterpError::CleanSpill { index, tile });
                }
                m.evict(tile);
                m.record_dma(TrafficClass::Psum, bytes);
            }
            SpmCommand::Discard {
                tile,
                address,
                bytes,
            } => {
                m.check_bytes(index, tile, bytes)?;
                let block = m.resident(index, tile, address)?;
                if block.dirty {
                    return Err(InterpError::DirtyDiscard { index, tile });
                }
                m.evict(tile);
            }
            SpmCommand::Move { .. } => {
                // Compaction emits a batch of moves that happen "at
                // once": later sources may overlap earlier
                // destinations, so lift the whole run out before
                // re-placing anything.
                let start = i;
                let mut end = i;
                while end < commands.len() && matches!(commands[end], SpmCommand::Move { .. }) {
                    end += 1;
                }
                let mut lifted = Vec::with_capacity(end - start);
                for (j, command) in commands.iter().enumerate().take(end).skip(start) {
                    let SpmCommand::Move {
                        tile,
                        bytes,
                        from,
                        to,
                    } = *command
                    else {
                        unreachable!("run contains only moves");
                    };
                    m.check_bytes(j, tile, bytes)?;
                    let block = m.resident(j, tile, from)?;
                    m.evict(tile);
                    lifted.push((j, tile, bytes, to, block));
                }
                for (j, tile, bytes, to, block) in lifted {
                    m.place(j, tile, to, bytes, block.valid)?;
                    m.blocks.get_mut(&tile).expect("just placed").dirty = block.dirty;
                    m.stats.moves += 1;
                    m.stats.moved_bytes += bytes;
                }
                i = end;
                continue;
            }
            SpmCommand::Exec {
                op,
                core,
                input,
                weight,
                output,
                accumulate,
            } => {
                if op.index() >= dfg.num_ops() {
                    return Err(InterpError::UnknownOp { index, op });
                }
                if core >= m.cores {
                    return Err(InterpError::BadCore { index, op, core });
                }
                let node = dfg.op(op);
                if accumulate != node.needs_psum() {
                    return Err(InterpError::AccumulateMismatch { index, op });
                }
                if let Some(pred) = dfg.pred(op) {
                    if m.executed[pred.index()] == 0 {
                        return Err(InterpError::PredecessorNotExecuted { index, op, pred });
                    }
                }
                for (tile, addr) in [(node.input(), input), (node.weight(), weight)] {
                    let block = m.resident(index, tile, addr)?;
                    if !block.valid {
                        return Err(InterpError::UninitRead { index, tile });
                    }
                }
                let out = m.resident(index, node.output(), output)?;
                if accumulate && !out.valid {
                    // Accumulating onto a partial sum that is not
                    // there (never computed, or spilled and not
                    // reloaded).
                    return Err(InterpError::UninitRead {
                        index,
                        tile: node.output(),
                    });
                }
                let block = m.blocks.get_mut(&node.output()).expect("checked resident");
                block.valid = true;
                block.dirty = true;
                m.executed[op.index()] += 1;
                m.stats.exec_core.insert(op, core);
            }
            SpmCommand::Store {
                tile,
                address,
                bytes,
            } => {
                if dfg.residency().output_resident {
                    return Err(InterpError::ResidentDramStore { index, tile });
                }
                m.check_bytes(index, tile, bytes)?;
                let block = m.resident(index, tile, address)?;
                if !block.valid {
                    return Err(InterpError::UninitRead { index, tile });
                }
                m.blocks.get_mut(&tile).expect("checked resident").dirty = false;
                m.record_dma(TrafficClass::Output, bytes);
            }
            SpmCommand::ScatterOut {
                tile,
                address,
                bytes,
            } => {
                if !dfg.residency().output_resident {
                    return Err(InterpError::ResidencyDisabled { index, tile });
                }
                m.check_bytes(index, tile, bytes)?;
                let block = m.resident(index, tile, address)?;
                if !block.valid {
                    return Err(InterpError::UninitRead { index, tile });
                }
                m.blocks.get_mut(&tile).expect("checked resident").dirty = false;
                m.stats.scatter_bytes += bytes;
                m.stats.scatter_transfers += 1;
            }
        }
        i += 1;
    }

    for (idx, &times) in m.executed.iter().enumerate() {
        if times != 1 {
            return Err(InterpError::ExecCount {
                op: OpId::new(idx as u32),
                times,
            });
        }
    }
    for (tile, block) in &m.blocks {
        if block.dirty {
            return Err(InterpError::UnsavedData { tile: *tile });
        }
    }
    Ok(m.stats)
}

/// A divergence between the analytical schedule and the interpreted
/// program, found by [`differential_check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DifferentialError {
    /// Per-class DMA bytes disagree.
    ClassBytes {
        /// The traffic class.
        class: TrafficClass,
        /// Bytes the schedule accounts.
        schedule: u64,
        /// Bytes the program moves.
        program: u64,
    },
    /// Per-class DMA transfer counts disagree.
    ClassTransfers {
        /// The traffic class.
        class: TrafficClass,
        /// Transfers the schedule accounts.
        schedule: u64,
        /// Transfers the program issues.
        program: u64,
    },
    /// Per-tile load counts disagree.
    LoadCount {
        /// The tile.
        tile: TileId,
        /// Loads the schedule records.
        schedule: u32,
        /// Loads the program issues.
        program: u32,
    },
    /// The program never executed an operation the schedule timed.
    ExecMissing {
        /// The operation.
        op: OpId,
    },
    /// The schedule and the program run an operation on different
    /// cores.
    CoreMismatch {
        /// The operation.
        op: OpId,
        /// The core in the schedule.
        schedule: u32,
        /// The core in the program.
        program: u32,
    },
    /// On-chip compaction volumes disagree.
    CompactionBytes {
        /// Bytes the schedule accounts.
        schedule: u64,
        /// Bytes the program's moves relocate.
        program: u64,
    },
    /// A cross-layer residency counter disagrees between the schedule
    /// and the interpreted program.
    ResidentCounter {
        /// Which counter diverged.
        what: &'static str,
        /// The schedule's value.
        schedule: u64,
        /// The program's value.
        program: u64,
    },
}

impl fmt::Display for DifferentialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DifferentialError::ClassBytes {
                class,
                schedule,
                program,
            } => write!(
                f,
                "{class} bytes diverge: schedule accounts {schedule}, program moves {program}"
            ),
            DifferentialError::ClassTransfers {
                class,
                schedule,
                program,
            } => write!(
                f,
                "{class} transfers diverge: schedule {schedule}, program {program}"
            ),
            DifferentialError::LoadCount {
                tile,
                schedule,
                program,
            } => write!(
                f,
                "load count of {tile} diverges: schedule {schedule}, program {program}"
            ),
            DifferentialError::ExecMissing { op } => {
                write!(
                    f,
                    "{op} is timed in the schedule but never executes in the program"
                )
            }
            DifferentialError::CoreMismatch {
                op,
                schedule,
                program,
            } => write!(
                f,
                "{op} runs on core {schedule} in the schedule, core {program} in the program"
            ),
            DifferentialError::CompactionBytes { schedule, program } => write!(
                f,
                "compaction diverges: schedule accounts {schedule} B, program moves {program} B"
            ),
            DifferentialError::ResidentCounter {
                what,
                schedule,
                program,
            } => write!(f, "{what} diverge: schedule {schedule}, program {program}"),
        }
    }
}

impl Error for DifferentialError {}

/// Cross-checks an interpreted program against its analytical
/// schedule: per-class DMA bytes and transfer counts, per-tile load
/// counts, per-op core placement, and (when `check_compaction`) the
/// on-chip compaction volume.
///
/// `check_compaction` is off for the static baseline, whose repacking
/// moves are an addressing artifact the analytical schedule does not
/// time.
///
/// # Errors
///
/// Returns the first [`DifferentialError`] found.
pub fn differential_check(
    schedule: &Schedule,
    stats: &InterpStats,
    check_compaction: bool,
) -> Result<(), DifferentialError> {
    for class in TrafficClass::all() {
        let (s, p) = (
            schedule.traffic().class_bytes(class),
            stats.class_bytes(class),
        );
        if s != p {
            return Err(DifferentialError::ClassBytes {
                class,
                schedule: s,
                program: p,
            });
        }
        let (s, p) = (
            schedule.traffic().class_transfers(class),
            stats.class_transfers(class),
        );
        if s != p {
            return Err(DifferentialError::ClassTransfers {
                class,
                schedule: s,
                program: p,
            });
        }
    }

    let schedule_loads = schedule.traffic().loads_per_tile();
    for (tile, &s) in schedule_loads {
        let p = stats.loads_per_tile().get(tile).copied().unwrap_or(0);
        if s != p {
            return Err(DifferentialError::LoadCount {
                tile: *tile,
                schedule: s,
                program: p,
            });
        }
    }
    for (tile, &p) in stats.loads_per_tile() {
        if !schedule_loads.contains_key(tile) {
            return Err(DifferentialError::LoadCount {
                tile: *tile,
                schedule: 0,
                program: p,
            });
        }
    }

    for s in schedule.compute() {
        match stats.exec_core(s.op) {
            None => return Err(DifferentialError::ExecMissing { op: s.op }),
            Some(core) if core != s.core => {
                return Err(DifferentialError::CoreMismatch {
                    op: s.op,
                    schedule: s.core,
                    program: core,
                });
            }
            Some(_) => {}
        }
    }

    if check_compaction && stats.moved_bytes() != schedule.compaction_bytes() {
        return Err(DifferentialError::CompactionBytes {
            schedule: schedule.compaction_bytes(),
            program: stats.moved_bytes(),
        });
    }

    for (what, s, p) in [
        (
            "resident gather bytes",
            schedule.resident_in_bytes(),
            stats.gather_bytes(),
        ),
        (
            "resident gather transfers",
            schedule.resident_in_transfers(),
            stats.gather_transfers(),
        ),
        (
            "resident scatter bytes",
            schedule.resident_out_bytes(),
            stats.scatter_bytes(),
        ),
        (
            "resident scatter transfers",
            schedule.resident_out_transfers(),
            stats.scatter_transfers(),
        ),
    ] {
        if s != p {
            return Err(DifferentialError::ResidentCounter {
                what,
                schedule: s,
                program: p,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_arch::{ArchConfig, ArchPreset, SystolicModel};
    use flexer_model::ConvLayer;
    use flexer_tiling::{Dataflow, TilingFactors};

    fn tiny_dfg() -> (Dfg, ArchConfig) {
        tiny_dfg_resident(flexer_tiling::Residency::default())
    }

    fn tiny_dfg_resident(residency: flexer_tiling::Residency) -> (Dfg, ArchConfig) {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let layer = ConvLayer::new("p", 8, 8, 8, 8).unwrap();
        let factors = TilingFactors::normalized(&layer, 1, 2, 1, 1);
        let model = SystolicModel::new(&arch);
        let dfg =
            Dfg::build_resident(&layer, factors, Dataflow::Kcs, &model, &arch, residency).unwrap();
        (dfg, arch)
    }

    /// A legal hand-written program for the 2-op accumulation chain.
    fn legal_commands(dfg: &Dfg) -> Vec<SpmCommand> {
        let op0 = dfg.op(OpId::new(0));
        let op1 = dfg.op(OpId::new(1));
        let b = |t: TileId| dfg.tile_bytes(t);
        vec![
            SpmCommand::Load {
                tile: op0.input(),
                address: 0,
                bytes: b(op0.input()),
            },
            SpmCommand::Load {
                tile: op0.weight(),
                address: 1000,
                bytes: b(op0.weight()),
            },
            SpmCommand::Reserve {
                tile: op0.output(),
                address: 2000,
                bytes: b(op0.output()),
            },
            SpmCommand::Exec {
                op: op0.id(),
                core: 0,
                input: 0,
                weight: 1000,
                output: 2000,
                accumulate: false,
            },
            SpmCommand::Discard {
                tile: op0.input(),
                address: 0,
                bytes: b(op0.input()),
            },
            SpmCommand::Load {
                tile: op1.input(),
                address: 0,
                bytes: b(op1.input()),
            },
            SpmCommand::Discard {
                tile: op0.weight(),
                address: 1000,
                bytes: b(op0.weight()),
            },
            SpmCommand::Load {
                tile: op1.weight(),
                address: 1000,
                bytes: b(op1.weight()),
            },
            SpmCommand::Exec {
                op: op1.id(),
                core: 1,
                input: 0,
                weight: 1000,
                output: 2000,
                accumulate: true,
            },
            SpmCommand::Store {
                tile: op1.output(),
                address: 2000,
                bytes: b(op1.output()),
            },
        ]
    }

    #[test]
    fn legal_program_interprets() {
        let (dfg, arch) = tiny_dfg();
        let stats = interpret_program(&dfg, arch.spm_bytes(), 2, &legal_commands(&dfg)).unwrap();
        assert_eq!(stats.execs(), 2);
        assert_eq!(stats.exec_core(OpId::new(1)), Some(1));
        assert_eq!(stats.class_transfers(TrafficClass::Input), 2);
        assert_eq!(stats.class_transfers(TrafficClass::Output), 1);
        assert!(stats.peak_bytes() > 0);
        assert_eq!(stats.moves(), 0);
    }

    #[test]
    fn dropped_load_rejected() {
        let (dfg, arch) = tiny_dfg();
        let mut cmds = legal_commands(&dfg);
        cmds.remove(7); // op1's weight load
        let err = interpret_program(&dfg, arch.spm_bytes(), 2, &cmds).unwrap_err();
        assert!(matches!(err, InterpError::NotResident { .. }), "{err}");
    }

    #[test]
    fn overlapping_placement_rejected() {
        let (dfg, arch) = tiny_dfg();
        let mut cmds = legal_commands(&dfg);
        if let SpmCommand::Load { address, .. } = &mut cmds[1] {
            *address = 4; // lands inside the input block
        }
        let err = interpret_program(&dfg, arch.spm_bytes(), 2, &cmds).unwrap_err();
        assert!(
            matches!(err, InterpError::Overlap { index: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn missing_final_store_rejected() {
        let (dfg, arch) = tiny_dfg();
        let mut cmds = legal_commands(&dfg);
        cmds.pop(); // drop the store: dirty accumulator survives
        let err = interpret_program(&dfg, arch.spm_bytes(), 2, &cmds).unwrap_err();
        assert!(matches!(err, InterpError::UnsavedData { .. }), "{err}");
    }

    #[test]
    fn dirty_discard_rejected() {
        let (dfg, arch) = tiny_dfg();
        let op0 = dfg.op(OpId::new(0));
        let out = op0.output();
        let mut cmds = legal_commands(&dfg);
        // Discard the dirty accumulator right after op0.
        cmds.insert(
            4,
            SpmCommand::Discard {
                tile: out,
                address: 2000,
                bytes: dfg.tile_bytes(out),
            },
        );
        let err = interpret_program(&dfg, arch.spm_bytes(), 2, &cmds).unwrap_err();
        assert!(
            matches!(err, InterpError::DirtyDiscard { index: 4, .. }),
            "{err}"
        );
    }

    #[test]
    fn accumulate_without_psum_rejected() {
        let (dfg, arch) = tiny_dfg();
        let mut cmds = legal_commands(&dfg);
        // Spill the accumulator after op0, then let op1 accumulate
        // onto... nothing.
        let out = dfg.op(OpId::new(0)).output();
        cmds.insert(
            4,
            SpmCommand::Spill {
                tile: out,
                address: 2000,
                bytes: dfg.tile_bytes(out),
            },
        );
        let err = interpret_program(&dfg, arch.spm_bytes(), 2, &cmds).unwrap_err();
        assert!(matches!(err, InterpError::NotResident { .. }), "{err}");
    }

    #[test]
    fn uninitialized_exec_operand_rejected() {
        let (dfg, arch) = tiny_dfg();
        let mut cmds = legal_commands(&dfg);
        // Swap op0's input load for a reserve: block exists but holds
        // no data.
        let op0 = dfg.op(OpId::new(0));
        cmds[0] = SpmCommand::Reserve {
            tile: op0.input(),
            address: 0,
            bytes: dfg.tile_bytes(op0.input()),
        };
        let err = interpret_program(&dfg, arch.spm_bytes(), 2, &cmds).unwrap_err();
        assert!(
            matches!(err, InterpError::UninitRead { index: 3, .. }),
            "{err}"
        );
    }

    #[test]
    fn predecessor_order_enforced() {
        let (dfg, arch) = tiny_dfg();
        let op1 = dfg.op(OpId::new(1));
        let b = |t: TileId| dfg.tile_bytes(t);
        let cmds = vec![
            SpmCommand::Load {
                tile: op1.input(),
                address: 0,
                bytes: b(op1.input()),
            },
            SpmCommand::Load {
                tile: op1.weight(),
                address: 1000,
                bytes: b(op1.weight()),
            },
            SpmCommand::Reserve {
                tile: op1.output(),
                address: 2000,
                bytes: b(op1.output()),
            },
            SpmCommand::Exec {
                op: op1.id(),
                core: 0,
                input: 0,
                weight: 1000,
                output: 2000,
                accumulate: true,
            },
        ];
        let err = interpret_program(&dfg, arch.spm_bytes(), 2, &cmds).unwrap_err();
        assert!(
            matches!(err, InterpError::PredecessorNotExecuted { .. }),
            "{err}"
        );
    }

    #[test]
    fn bad_core_rejected() {
        let (dfg, arch) = tiny_dfg();
        let mut cmds = legal_commands(&dfg);
        if let SpmCommand::Exec { core, .. } = &mut cmds[3] {
            *core = 99;
        }
        let err = interpret_program(&dfg, arch.spm_bytes(), 2, &cmds).unwrap_err();
        assert!(
            matches!(err, InterpError::BadCore { core: 99, .. }),
            "{err}"
        );
    }

    #[test]
    fn atomic_move_batch_allows_sliding() {
        let (dfg, arch) = tiny_dfg();
        let op0 = dfg.op(OpId::new(0));
        let b = |t: TileId| dfg.tile_bytes(t);
        let cmds = vec![
            SpmCommand::Load {
                tile: op0.input(),
                address: 100,
                bytes: b(op0.input()),
            },
            SpmCommand::Load {
                tile: op0.weight(),
                address: 100 + b(op0.input()),
                bytes: b(op0.weight()),
            },
            // Slide both down; the second destination overlaps the
            // first's old home.
            SpmCommand::Move {
                tile: op0.input(),
                bytes: b(op0.input()),
                from: 100,
                to: 0,
            },
            SpmCommand::Move {
                tile: op0.weight(),
                bytes: b(op0.weight()),
                from: 100 + b(op0.input()),
                to: b(op0.input()),
            },
        ];
        // Ends with unexecuted ops -> ExecCount, proving the moves
        // themselves were legal.
        let err = interpret_program(&dfg, arch.spm_bytes(), 2, &cmds).unwrap_err();
        assert!(
            matches!(err, InterpError::ExecCount { times: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn address_mismatch_rejected() {
        let (dfg, arch) = tiny_dfg();
        let mut cmds = legal_commands(&dfg);
        if let SpmCommand::Exec { weight, .. } = &mut cmds[3] {
            *weight = 1008;
        }
        let err = interpret_program(&dfg, arch.spm_bytes(), 2, &cmds).unwrap_err();
        assert!(matches!(err, InterpError::AddressMismatch { .. }), "{err}");
    }

    #[test]
    fn tile_size_lies_rejected() {
        let (dfg, arch) = tiny_dfg();
        let mut cmds = legal_commands(&dfg);
        if let SpmCommand::Load { bytes, .. } = &mut cmds[0] {
            *bytes += 1;
        }
        let err = interpret_program(&dfg, arch.spm_bytes(), 2, &cmds).unwrap_err();
        assert!(
            matches!(err, InterpError::TileBytesMismatch { index: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn out_of_bounds_rejected() {
        let (dfg, _) = tiny_dfg();
        let err = interpret_program(&dfg, 64, 2, &legal_commands(&dfg)).unwrap_err();
        assert!(
            matches!(
                err,
                InterpError::OutOfBounds { .. } | InterpError::Overlap { .. }
            ),
            "{err}"
        );
    }

    /// The legal program with input loads turned into gathers and the
    /// final store turned into a scatter.
    fn resident_commands(dfg: &Dfg) -> Vec<SpmCommand> {
        legal_commands(dfg)
            .into_iter()
            .map(|cmd| match cmd {
                SpmCommand::Load {
                    tile,
                    address,
                    bytes,
                } if tile.kind() == TileKind::Input => SpmCommand::GatherIn {
                    tile,
                    address,
                    bytes,
                },
                SpmCommand::Store {
                    tile,
                    address,
                    bytes,
                } => SpmCommand::ScatterOut {
                    tile,
                    address,
                    bytes,
                },
                other => other,
            })
            .collect()
    }

    fn full_residency() -> flexer_tiling::Residency {
        flexer_tiling::Residency {
            input_resident: true,
            output_resident: true,
        }
    }

    #[test]
    fn resident_program_interprets_with_on_chip_counters() {
        let (dfg, arch) = tiny_dfg_resident(full_residency());
        let cmds = resident_commands(&dfg);
        let stats = interpret_program(&dfg, arch.spm_bytes(), 2, &cmds).unwrap();
        assert_eq!(stats.execs(), 2);
        // Inputs gathered on-chip: no DRAM input traffic, no load
        // counts for them.
        assert_eq!(stats.class_bytes(TrafficClass::Input), 0);
        assert_eq!(stats.gather_transfers(), 2);
        assert!(stats.gather_bytes() > 0);
        // The final output scattered on-chip: no DRAM output traffic.
        assert_eq!(stats.class_bytes(TrafficClass::Output), 0);
        assert_eq!(stats.scatter_transfers(), 1);
        assert!(stats.scatter_bytes() > 0);
    }

    #[test]
    fn gather_without_residency_rejected() {
        let (dfg, arch) = tiny_dfg();
        let cmds = resident_commands(&dfg);
        let err = interpret_program(&dfg, arch.spm_bytes(), 2, &cmds).unwrap_err();
        assert!(
            matches!(err, InterpError::ResidencyDisabled { .. }),
            "{err}"
        );
    }

    #[test]
    fn resident_input_dram_load_rejected() {
        let (dfg, arch) = tiny_dfg_resident(full_residency());
        // The plain program loads inputs from DRAM — illegal when the
        // plan keeps them resident.
        let err = interpret_program(&dfg, arch.spm_bytes(), 2, &legal_commands(&dfg)).unwrap_err();
        assert!(matches!(err, InterpError::ResidentDramLoad { .. }), "{err}");
    }

    #[test]
    fn resident_output_dram_store_rejected() {
        let (dfg, arch) = tiny_dfg_resident(flexer_tiling::Residency {
            input_resident: false,
            output_resident: true,
        });
        let err = interpret_program(&dfg, arch.spm_bytes(), 2, &legal_commands(&dfg)).unwrap_err();
        assert!(
            matches!(err, InterpError::ResidentDramStore { .. }),
            "{err}"
        );
    }

    #[test]
    fn errors_render() {
        let (dfg, arch) = tiny_dfg();
        let mut cmds = legal_commands(&dfg);
        cmds.pop();
        let err = interpret_program(&dfg, arch.spm_bytes(), 2, &cmds).unwrap_err();
        assert!(err.to_string().contains("data lost"), "{err}");
    }
}
