//! Network-level residency ledger: the cross-layer counterpart of the
//! per-layer abstract machine.
//!
//! [`interpret_program`](crate::interpret_program) validates one
//! layer's command stream; residency decisions, however, span layer
//! boundaries — a producer scatters its output tensor into a reserved
//! SPM region, every consumer gathers from it, and the region must be
//! released exactly when the last consumer retires. The
//! [`ResidencyLedger`] replays those cross-layer events against the
//! residency budget and catches the failure modes a per-layer check
//! cannot see: gathering from a tensor that was spilled under pressure
//! (use-after-free), releasing a tensor twice (double-free), and
//! reserving past the budget (overflow).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Lifecycle state of one cross-layer resident tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TensorState {
    /// Reserved and holding data; `remaining` consumers still to
    /// retire.
    Live { bytes: u64, remaining: u32 },
    /// Evicted under pressure — the bytes were released and the data
    /// went back to DRAM; any further consumption is a use-after-free.
    Spilled,
    /// Fully consumed and released at the last consumer's retirement.
    Freed,
}

/// A violation of the cross-layer residency protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerError {
    /// A reservation would exceed the residency budget.
    BudgetOverflow {
        /// The tensor being reserved.
        tensor: String,
        /// Its size.
        bytes: u64,
        /// Bytes already reserved.
        used: u64,
        /// The budget.
        budget: u64,
    },
    /// A tensor was reserved while already live.
    AlreadyReserved {
        /// The tensor.
        tensor: String,
    },
    /// A consumer read a tensor that was spilled under pressure.
    UseAfterFree {
        /// The tensor.
        tensor: String,
    },
    /// A tensor was consumed or spilled after its last consumer
    /// already released it.
    DoubleFree {
        /// The tensor.
        tensor: String,
    },
    /// An event named a tensor the ledger has never seen.
    UnknownTensor {
        /// The tensor.
        tensor: String,
    },
    /// A tensor was still live when the network finished: some
    /// consumer the plan promised never retired it.
    Leaked {
        /// The tensor.
        tensor: String,
        /// Consumers still outstanding.
        remaining: u32,
    },
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::BudgetOverflow {
                tensor,
                bytes,
                used,
                budget,
            } => write!(
                f,
                "reserving {bytes} B for {tensor} overflows the residency budget ({used} of {budget} B used)"
            ),
            LedgerError::AlreadyReserved { tensor } => {
                write!(f, "{tensor} reserved while already live")
            }
            LedgerError::UseAfterFree { tensor } => {
                write!(f, "{tensor} consumed after being spilled — use-after-free")
            }
            LedgerError::DoubleFree { tensor } => {
                write!(f, "{tensor} released after its last consumer retired — double-free")
            }
            LedgerError::UnknownTensor { tensor } => {
                write!(f, "{tensor} was never reserved")
            }
            LedgerError::Leaked { tensor, remaining } => write!(
                f,
                "{tensor} still live at network end with {remaining} consumer(s) outstanding"
            ),
        }
    }
}

impl Error for LedgerError {}

/// Replays the cross-layer residency events of a network plan against
/// a byte budget, enforcing the carried-tensor protocol: reserve once,
/// consume exactly `consumers` times (the region is released at the
/// last retirement), spill at most once, never touch after release.
///
/// # Examples
///
/// ```
/// use flexer_sim::ResidencyLedger;
///
/// let mut ledger = ResidencyLedger::new(1024);
/// ledger.reserve("conv1→conv2", 512, 1)?;
/// assert_eq!(ledger.used(), 512);
/// ledger.consume("conv1→conv2")?; // last consumer retires the region
/// assert_eq!(ledger.used(), 0);
/// ledger.finish()?;
/// # Ok::<(), flexer_sim::LedgerError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ResidencyLedger {
    budget: u64,
    used: u64,
    peak: u64,
    tensors: BTreeMap<String, TensorState>,
}

impl ResidencyLedger {
    /// A ledger over `budget` bytes of SPM residency region.
    #[must_use]
    pub fn new(budget: u64) -> Self {
        Self {
            budget,
            used: 0,
            peak: 0,
            tensors: BTreeMap::new(),
        }
    }

    /// Reserves `bytes` for a produced tensor that `consumers` later
    /// reads will retire.
    ///
    /// # Errors
    ///
    /// [`LedgerError::BudgetOverflow`] when the reservation does not
    /// fit, [`LedgerError::AlreadyReserved`] when the tensor is
    /// already live.
    pub fn reserve(&mut self, tensor: &str, bytes: u64, consumers: u32) -> Result<(), LedgerError> {
        if matches!(self.tensors.get(tensor), Some(TensorState::Live { .. })) {
            return Err(LedgerError::AlreadyReserved {
                tensor: tensor.to_string(),
            });
        }
        let needed = self.used.saturating_add(bytes);
        if needed > self.budget {
            return Err(LedgerError::BudgetOverflow {
                tensor: tensor.to_string(),
                bytes,
                used: self.used,
                budget: self.budget,
            });
        }
        self.used = needed;
        self.peak = self.peak.max(self.used);
        self.tensors.insert(
            tensor.to_string(),
            TensorState::Live {
                bytes,
                remaining: consumers,
            },
        );
        Ok(())
    }

    /// One consumer of `tensor` retires; the region is released when
    /// the last one does.
    ///
    /// # Errors
    ///
    /// [`LedgerError::UseAfterFree`] for a spilled tensor,
    /// [`LedgerError::DoubleFree`] for an already-released one,
    /// [`LedgerError::UnknownTensor`] for one never reserved.
    pub fn consume(&mut self, tensor: &str) -> Result<(), LedgerError> {
        match self.tensors.get_mut(tensor) {
            Some(TensorState::Live { bytes, remaining }) => {
                *remaining = remaining.saturating_sub(1);
                if *remaining == 0 {
                    let released = *bytes;
                    self.used -= released;
                    self.tensors.insert(tensor.to_string(), TensorState::Freed);
                }
                Ok(())
            }
            Some(TensorState::Spilled) => Err(LedgerError::UseAfterFree {
                tensor: tensor.to_string(),
            }),
            Some(TensorState::Freed) => Err(LedgerError::DoubleFree {
                tensor: tensor.to_string(),
            }),
            None => Err(LedgerError::UnknownTensor {
                tensor: tensor.to_string(),
            }),
        }
    }

    /// Evicts a live tensor under pressure: its bytes are released and
    /// its data falls back to DRAM, so any later [`consume`]
    /// (`ResidencyLedger::consume`) is a use-after-free.
    ///
    /// # Errors
    ///
    /// [`LedgerError::DoubleFree`] for an already-released tensor,
    /// [`LedgerError::UnknownTensor`] for one never reserved.
    pub fn spill(&mut self, tensor: &str) -> Result<(), LedgerError> {
        match self.tensors.get(tensor) {
            Some(TensorState::Live { bytes, .. }) => {
                self.used -= *bytes;
                self.tensors
                    .insert(tensor.to_string(), TensorState::Spilled);
                Ok(())
            }
            Some(TensorState::Spilled | TensorState::Freed) => Err(LedgerError::DoubleFree {
                tensor: tensor.to_string(),
            }),
            None => Err(LedgerError::UnknownTensor {
                tensor: tensor.to_string(),
            }),
        }
    }

    /// Bytes currently reserved.
    #[must_use]
    pub const fn used(&self) -> u64 {
        self.used
    }

    /// Peak bytes ever reserved.
    #[must_use]
    pub const fn peak(&self) -> u64 {
        self.peak
    }

    /// Checks that nothing is still live at network end.
    ///
    /// # Errors
    ///
    /// [`LedgerError::Leaked`] naming the first still-live tensor.
    pub fn finish(&self) -> Result<(), LedgerError> {
        for (tensor, state) in &self.tensors {
            if let TensorState::Live { remaining, .. } = state {
                return Err(LedgerError::Leaked {
                    tensor: tensor.clone(),
                    remaining: *remaining,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_consume_free_cycle() {
        let mut ledger = ResidencyLedger::new(1000);
        ledger.reserve("a", 600, 2).unwrap();
        assert_eq!(ledger.used(), 600);
        ledger.consume("a").unwrap();
        assert_eq!(ledger.used(), 600, "one consumer left");
        ledger.consume("a").unwrap();
        assert_eq!(ledger.used(), 0, "released at last retirement");
        assert_eq!(ledger.peak(), 600);
        ledger.finish().unwrap();
    }

    #[test]
    fn budget_overflow_rejected() {
        let mut ledger = ResidencyLedger::new(1000);
        ledger.reserve("a", 600, 1).unwrap();
        let err = ledger.reserve("b", 500, 1).unwrap_err();
        assert!(matches!(err, LedgerError::BudgetOverflow { .. }), "{err}");
    }

    #[test]
    fn use_after_spill_rejected() {
        let mut ledger = ResidencyLedger::new(1000);
        ledger.reserve("a", 600, 1).unwrap();
        ledger.spill("a").unwrap();
        assert_eq!(ledger.used(), 0);
        let err = ledger.consume("a").unwrap_err();
        assert!(matches!(err, LedgerError::UseAfterFree { .. }), "{err}");
    }

    #[test]
    fn double_free_rejected() {
        let mut ledger = ResidencyLedger::new(1000);
        ledger.reserve("a", 600, 1).unwrap();
        ledger.consume("a").unwrap();
        let err = ledger.consume("a").unwrap_err();
        assert!(matches!(err, LedgerError::DoubleFree { .. }), "{err}");
        let err = ledger.spill("a").unwrap_err();
        assert!(matches!(err, LedgerError::DoubleFree { .. }), "{err}");
    }

    #[test]
    fn unknown_tensor_rejected() {
        let mut ledger = ResidencyLedger::new(1000);
        let err = ledger.consume("ghost").unwrap_err();
        assert!(matches!(err, LedgerError::UnknownTensor { .. }), "{err}");
    }

    #[test]
    fn leak_caught_at_finish() {
        let mut ledger = ResidencyLedger::new(1000);
        ledger.reserve("a", 600, 2).unwrap();
        ledger.consume("a").unwrap();
        let err = ledger.finish().unwrap_err();
        assert!(
            matches!(err, LedgerError::Leaked { remaining: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn freed_tensor_can_be_rereserved() {
        let mut ledger = ResidencyLedger::new(1000);
        ledger.reserve("a", 600, 1).unwrap();
        ledger.consume("a").unwrap();
        ledger.reserve("a", 400, 1).unwrap();
        ledger.consume("a").unwrap();
        ledger.finish().unwrap();
    }

    #[test]
    fn errors_render() {
        let mut ledger = ResidencyLedger::new(10);
        let err = ledger.reserve("big", 100, 1).unwrap_err();
        assert!(err.to_string().contains("overflows"), "{err}");
    }
}
