//! Timing engine, schedule records and statistics.
//!
//! The paper's authors evaluate Flexer with a proprietary cycle-
//! accurate simulator; this crate is the reproduction's substitute
//! (DESIGN.md §2). It provides:
//!
//! * [`Timeline`] — resource timelines for the `n` NPU cores and the
//!   shared DMA channel to off-chip memory;
//! * [`ScheduleBuilder`] / [`Schedule`] — the executable record a
//!   scheduler produces: timed compute operations, timed memory
//!   operations, total latency and traffic statistics;
//! * [`TrafficStats`] / [`TrafficClass`] — transferred bytes split by
//!   data type (input, weight, partial sum, output) with per-tile
//!   reload counts (paper Figure 10);
//! * [`SpatialReuseStats`] — inter-NPU sharing events (paper
//!   Figure 11);
//! * [`validate_schedule`] — structural legality checks (every op
//!   scheduled once, dependencies respected, core/DMA exclusivity);
//! * [`interpret_program`] / [`differential_check`] — a program-level
//!   abstract machine that executes a lowered command stream against a
//!   byte-accurate SPM model and cross-checks the observed traffic
//!   against the analytical schedule;
//! * [`onchip_reference_traffic`] — the infinite-buffer lower bound
//!   where every tile moves at most once (Figure 10's "on-chip" bar);
//! * [`schedule_trace`] — the per-core execution timeline of a
//!   schedule as a `flexer-trace` trace (a machine-readable Gantt
//!   chart, loadable into a Chrome-trace viewer).
//!
//! # Examples
//!
//! ```
//! use flexer_sim::{MemOpKind, ScheduleBuilder, TrafficClass};
//! use flexer_tiling::{OpId, TileId};
//!
//! let mut b = ScheduleBuilder::new(2);
//! let tile = TileId::Input { c: 0, s: 0 };
//! let (_, load_done) =
//!     b.record_mem_op(MemOpKind::Load, TrafficClass::Input, tile, 64, 10, Some(OpId::new(0)))?;
//! let (start, end) = b.record_compute(OpId::new(0), 0, load_done, 100)?;
//! assert_eq!(start, load_done);
//! assert_eq!(end, load_done + 100);
//! let schedule = b.finish();
//! assert_eq!(schedule.latency(), end);
//! assert_eq!(schedule.traffic().total_bytes(), 64);
//! # Ok::<(), flexer_sim::TimelineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod energy;
mod engine;
mod gantt;
mod interp;
mod ledger;
mod reference;
mod render;
mod schedule;
mod traffic;
mod validate;
pub mod wire;

pub use energy::schedule_energy;
pub use engine::{Timeline, TimelineError};
pub use gantt::schedule_trace;
pub use interp::{
    differential_check, interpret_program, DifferentialError, InterpError, InterpStats, SpmCommand,
};
pub use ledger::{LedgerError, ResidencyLedger};
pub use reference::onchip_reference_traffic;
pub use render::{render_gantt, to_tsv};
pub use schedule::{MemOp, MemOpKind, Schedule, ScheduleBuilder, ScheduledOp, SpatialReuseStats};
pub use traffic::{TrafficClass, TrafficStats};
pub use validate::{validate_schedule, ValidationError};
