//! The infinite-buffer traffic reference.

use crate::traffic::{TrafficClass, TrafficStats};
use flexer_tiling::{Dfg, TileKind};

/// Computes the traffic of the paper's Figure-10 *on-chip* reference:
/// the best schedule for an unlimited on-chip memory, where every data
/// tile is moved at most once — each input and weight tile is loaded
/// once, each output tile is stored once, and no partial-sum traffic
/// exists.
///
/// # Examples
///
/// ```
/// use flexer_arch::{ArchConfig, ArchPreset, SystolicModel};
/// use flexer_model::ConvLayer;
/// use flexer_sim::{onchip_reference_traffic, TrafficClass};
/// use flexer_tiling::{Dataflow, Dfg, TilingFactors};
///
/// let arch = ArchConfig::preset(ArchPreset::Arch1);
/// let layer = ConvLayer::new("c", 16, 8, 8, 16)?;
/// let factors = TilingFactors::normalized(&layer, 2, 2, 1, 1);
/// let dfg = Dfg::build(&layer, factors, Dataflow::Kcs, &SystolicModel::new(&arch), &arch)?;
/// let t = onchip_reference_traffic(&dfg);
/// assert_eq!(t.class_bytes(TrafficClass::Psum), 0);
/// assert_eq!(
///     t.class_bytes(TrafficClass::Output),
///     layer.output_bytes(arch.element_size()),
/// );
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn onchip_reference_traffic(dfg: &Dfg) -> TrafficStats {
    let mut stats = TrafficStats::default();
    for tile in dfg.tiles() {
        let bytes = dfg.tile_bytes(tile);
        match tile.kind() {
            TileKind::Input => stats.record_load(TrafficClass::Input, tile, bytes),
            TileKind::Weight => stats.record_load(TrafficClass::Weight, tile, bytes),
            TileKind::Output => stats.record_store(TrafficClass::Output, bytes),
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_arch::{ArchConfig, ArchPreset, SystolicModel};
    use flexer_model::ConvLayer;
    use flexer_tiling::{Dataflow, TilingFactors};

    #[test]
    fn reference_moves_each_tile_once() {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let layer = ConvLayer::new("c", 32, 16, 16, 32).unwrap();
        let factors = TilingFactors::normalized(&layer, 2, 2, 2, 2);
        let dfg = Dfg::build(
            &layer,
            factors,
            Dataflow::Kcs,
            &SystolicModel::new(&arch),
            &arch,
        )
        .unwrap();
        let t = onchip_reference_traffic(&dfg);
        assert_eq!(
            t.class_bytes(TrafficClass::Input),
            dfg.unique_bytes(TileKind::Input)
        );
        assert_eq!(
            t.class_bytes(TrafficClass::Weight),
            dfg.unique_bytes(TileKind::Weight)
        );
        assert_eq!(
            t.class_bytes(TrafficClass::Output),
            dfg.unique_bytes(TileKind::Output)
        );
        assert_eq!(t.class_bytes(TrafficClass::Psum), 0);
        // No tile is ever reloaded.
        assert_eq!(t.max_loads(TileKind::Input), 1);
        assert_eq!(t.max_loads(TileKind::Weight), 1);
        assert!(!t.has_reload_variation(TileKind::Input));
    }

    #[test]
    fn reference_is_independent_of_dataflow() {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let layer = ConvLayer::new("c", 16, 12, 12, 16).unwrap();
        let factors = TilingFactors::normalized(&layer, 2, 2, 2, 1);
        let model = SystolicModel::new(&arch);
        let a = onchip_reference_traffic(
            &Dfg::build(&layer, factors, Dataflow::Kcs, &model, &arch).unwrap(),
        );
        let b = onchip_reference_traffic(
            &Dfg::build(&layer, factors, Dataflow::Sck, &model, &arch).unwrap(),
        );
        assert_eq!(a, b);
    }
}
