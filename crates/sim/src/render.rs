//! Human-readable schedule rendering and raw export.
//!
//! Two consumers: humans debugging a schedule (the ASCII Gantt chart
//! mirrors how the paper visualizes executions) and external tooling
//! (the TSV export feeds plotting scripts without requiring a JSON
//! dependency).

use crate::schedule::{MemOpKind, Schedule};
use std::fmt::Write as _;

/// Renders an ASCII Gantt chart of the schedule: one lane per NPU
/// core plus one for the DMA channel, `width` characters across the
/// full makespan.
///
/// Compute operations print as `#`, loads as `<`, spills/stores as
/// `>`; idle time as `.`. Overlapping glyphs within one cell keep the
/// first writer.
///
/// # Examples
///
/// ```
/// use flexer_sim::{render_gantt, MemOpKind, ScheduleBuilder, TrafficClass};
/// use flexer_tiling::{OpId, TileId};
///
/// let mut b = ScheduleBuilder::new(1);
/// let tile = TileId::Input { c: 0, s: 0 };
/// let (_, end) = b.record_mem_op(MemOpKind::Load, TrafficClass::Input, tile, 64, 50, None)?;
/// b.record_compute(OpId::new(0), 0, end, 50)?;
/// let chart = render_gantt(&b.finish(), 20);
/// assert!(chart.contains("core0"));
/// assert!(chart.contains('#'));
/// assert!(chart.contains('<'));
/// # Ok::<(), flexer_sim::TimelineError>(())
/// ```
#[must_use]
pub fn render_gantt(schedule: &Schedule, width: usize) -> String {
    let width = width.max(10);
    let span = schedule.latency().max(1);
    let cell = |t: u64| (((t as u128) * width as u128) / (span as u128 + 1)) as usize;

    let mut lanes: Vec<(String, Vec<u8>)> = (0..schedule.cores())
        .map(|c| (format!("core{c}"), vec![b'.'; width]))
        .collect();
    lanes.push(("dma".to_owned(), vec![b'.'; width]));

    for op in schedule.compute() {
        let lane = &mut lanes[op.core as usize].1;
        let span = cell(op.start)..=cell(op.end.saturating_sub(1)).min(width - 1);
        lane[span].fill(b'#');
    }
    let dma = schedule.cores() as usize;
    for m in schedule.mem_ops() {
        let glyph = match m.kind {
            MemOpKind::Load => b'<',
            MemOpKind::Spill | MemOpKind::Store => b'>',
        };
        let lane = &mut lanes[dma].1;
        for c in &mut lane[cell(m.start)..=cell(m.end.saturating_sub(1)).min(width - 1)] {
            if *c == b'.' {
                *c = glyph;
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "0 .. {} cycles", schedule.latency());
    for (label, lane) in lanes {
        let _ = writeln!(
            out,
            "{label:>6} |{}|",
            String::from_utf8(lane).expect("ASCII lane")
        );
    }
    out
}

/// Exports the schedule as tab-separated values, one event per line:
///
/// ```text
/// kind  resource  start  end  what  bytes
/// ```
///
/// `kind` is `compute`, `load`, `spill` or `store`; `resource` is
/// `core<N>` or `dma`. Events are ordered by start time (ties: compute
/// first, then resource).
///
/// # Examples
///
/// ```
/// use flexer_sim::{to_tsv, ScheduleBuilder};
/// use flexer_tiling::OpId;
///
/// let mut b = ScheduleBuilder::new(1);
/// b.record_compute(OpId::new(0), 0, 0, 10)?;
/// let tsv = to_tsv(&b.finish());
/// assert!(tsv.starts_with("kind\tresource\tstart\tend\twhat\tbytes"));
/// assert!(tsv.contains("compute\tcore0\t0\t10\ttCONV0\t0"));
/// # Ok::<(), flexer_sim::TimelineError>(())
/// ```
#[must_use]
pub fn to_tsv(schedule: &Schedule) -> String {
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    struct Row {
        start: u64,
        order: u8,
        resource: String,
        end: u64,
        kind: &'static str,
        what: String,
        bytes: u64,
    }
    let mut rows: Vec<Row> = Vec::new();
    for op in schedule.compute() {
        rows.push(Row {
            start: op.start,
            order: 0,
            resource: format!("core{}", op.core),
            end: op.end,
            kind: "compute",
            what: op.op.to_string(),
            bytes: 0,
        });
    }
    for m in schedule.mem_ops() {
        rows.push(Row {
            start: m.start,
            order: 1,
            resource: "dma".to_owned(),
            end: m.end,
            kind: match m.kind {
                MemOpKind::Load => "load",
                MemOpKind::Spill => "spill",
                MemOpKind::Store => "store",
            },
            what: m.tile.to_string(),
            bytes: m.bytes,
        });
    }
    rows.sort();
    let mut out = String::from("kind\tresource\tstart\tend\twhat\tbytes\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}",
            r.kind, r.resource, r.start, r.end, r.what, r.bytes
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ScheduleBuilder;
    use crate::traffic::TrafficClass;
    use flexer_tiling::{OpId, TileId};

    fn sample() -> Schedule {
        let mut b = ScheduleBuilder::new(2);
        let t_in = TileId::Input { c: 0, s: 0 };
        let t_out = TileId::Output { k: 0, s: 0 };
        let (_, le) = b
            .record_mem_op(MemOpKind::Load, TrafficClass::Input, t_in, 128, 40, None)
            .unwrap();
        b.record_compute(OpId::new(0), 0, le, 100).unwrap();
        b.record_compute(OpId::new(1), 1, le, 60).unwrap();
        b.record_mem_op(MemOpKind::Store, TrafficClass::Output, t_out, 64, 30, None)
            .unwrap();
        b.finish()
    }

    #[test]
    fn gantt_has_one_lane_per_resource() {
        let chart = render_gantt(&sample(), 40);
        assert!(chart.contains("core0"));
        assert!(chart.contains("core1"));
        assert!(chart.contains("dma"));
        // Three lane rows plus the header.
        assert_eq!(chart.lines().count(), 4);
    }

    #[test]
    fn gantt_marks_busy_and_idle() {
        let chart = render_gantt(&sample(), 40);
        let core0 = chart.lines().find(|l| l.contains("core0")).unwrap();
        assert!(core0.contains('#'));
        assert!(core0.contains('.'));
        let dma = chart.lines().find(|l| l.contains("dma")).unwrap();
        assert!(dma.contains('<'));
        assert!(dma.contains('>'));
    }

    #[test]
    fn gantt_handles_empty_schedules() {
        let empty = ScheduleBuilder::new(1).finish();
        let chart = render_gantt(&empty, 20);
        assert!(chart.contains("0 .. 0 cycles"));
    }

    #[test]
    fn gantt_clamps_tiny_width() {
        let chart = render_gantt(&sample(), 1);
        assert!(chart.lines().count() >= 3);
    }

    #[test]
    fn tsv_lists_every_event_in_time_order() {
        let tsv = to_tsv(&sample());
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 1 + 4);
        // Load starts at 0, computes at 40, store after.
        assert!(lines[1].starts_with("load\tdma\t0\t40\tIN(c0,s0)\t128"));
        let starts: Vec<u64> = lines[1..]
            .iter()
            .map(|l| l.split('\t').nth(2).unwrap().parse().unwrap())
            .collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }

    #[test]
    fn tsv_is_machine_parseable() {
        let tsv = to_tsv(&sample());
        for line in tsv.lines().skip(1) {
            assert_eq!(line.split('\t').count(), 6, "{line}");
        }
    }
}
