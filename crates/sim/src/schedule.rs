//! Executable schedule records.

use crate::engine::{Timeline, TimelineError};
use crate::traffic::{TrafficClass, TrafficStats};
use flexer_tiling::{OpId, TileId, TileKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Direction of a memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemOpKind {
    /// DRAM to SPM.
    Load,
    /// SPM to DRAM write-back of a dirty evicted tile (spill).
    Spill,
    /// SPM to DRAM store of a finished output tile.
    Store,
}

impl fmt::Display for MemOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemOpKind::Load => "load",
            MemOpKind::Spill => "spill",
            MemOpKind::Store => "store",
        };
        f.write_str(s)
    }
}

/// One timed DMA transfer of a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemOp {
    /// Transfer direction/purpose.
    pub kind: MemOpKind,
    /// Traffic class for the Figure-10 breakdown.
    pub class: TrafficClass,
    /// The tile moved.
    pub tile: TileId,
    /// Bytes moved.
    pub bytes: u64,
    /// Start cycle on the DMA channel.
    pub start: u64,
    /// End cycle on the DMA channel.
    pub end: u64,
    /// The compute operation this transfer was issued for, when it is
    /// a load feeding a specific operation.
    pub for_op: Option<OpId>,
    /// `true` for an on-chip residency transfer (a gather of a
    /// resident input tile or a scatter into the resident output
    /// region): the DMA engine is busy for the span but no DRAM bytes
    /// move, so the bytes are counted in the schedule's resident
    /// counters instead of [`TrafficStats`].
    pub resident: bool,
}

/// One timed compute operation of a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledOp {
    /// The tiled convolution executed.
    pub op: OpId,
    /// The NPU core it ran on.
    pub core: u32,
    /// Start cycle.
    pub start: u64,
    /// End cycle.
    pub end: u64,
}

/// Inter-NPU data sharing within operation sets (paper Figure 11).
///
/// A *spatial reuse event* is one tile consumed by two or more
/// operations of the same scheduled set — i.e. by several NPUs
/// simultaneously. `events[kind]` counts such tiles, `bytes[kind]`
/// accumulates the traffic avoided (`tile size x (sharers - 1)`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpatialReuseStats {
    events: [u64; 3],
    bytes: [u64; 3],
}

impl SpatialReuseStats {
    const fn index(kind: TileKind) -> usize {
        match kind {
            TileKind::Input => 0,
            TileKind::Weight => 1,
            TileKind::Output => 2,
        }
    }

    /// Records one tile of `kind` and `bytes` shared by `sharers`
    /// operations of a set (`sharers >= 2`).
    pub fn record(&mut self, kind: TileKind, bytes: u64, sharers: u32) {
        debug_assert!(sharers >= 2);
        self.events[Self::index(kind)] += 1;
        self.bytes[Self::index(kind)] += bytes * u64::from(sharers - 1);
    }

    /// Number of sharing events for `kind`.
    #[must_use]
    pub const fn events(&self, kind: TileKind) -> u64 {
        self.events[Self::index(kind)]
    }

    /// Bytes of traffic avoided through sharing of `kind` tiles.
    #[must_use]
    pub const fn bytes(&self, kind: TileKind) -> u64 {
        self.bytes[Self::index(kind)]
    }

    /// Total sharing events over all kinds.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.events.iter().sum()
    }

    /// Number of distinct tile kinds that were ever shared — loop-order
    /// schedules share exactly one kind (the stationary one), OoO
    /// schedules typically share several (paper Figure 11).
    #[must_use]
    pub fn kinds_shared(&self) -> usize {
        self.events.iter().filter(|&&e| e > 0).count()
    }

    pub(crate) fn encode_wire(&self, w: &mut crate::wire::WireWriter) {
        for &e in &self.events {
            w.u64(e);
        }
        for &b in &self.bytes {
            w.u64(b);
        }
    }

    pub(crate) fn decode_wire(
        r: &mut crate::wire::WireReader<'_>,
    ) -> Result<Self, crate::wire::WireError> {
        let mut out = SpatialReuseStats::default();
        for e in &mut out.events {
            *e = r.u64()?;
        }
        for b in &mut out.bytes {
            *b = r.u64()?;
        }
        Ok(out)
    }
}

/// The executable schedule of one tiled layer: timed compute and
/// memory operations plus aggregate metrics.
///
/// Produced by [`ScheduleBuilder`]; consumed by the search driver (for
/// the `latency x transferred-data` metric of Algorithm 1), the
/// validator and the experiment harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    cores: u32,
    compute: Vec<ScheduledOp>,
    mem_ops: Vec<MemOp>,
    latency: u64,
    core_busy: Vec<u64>,
    traffic: TrafficStats,
    spatial: SpatialReuseStats,
    utilization_sum: f64,
    utilization_samples: u64,
    compaction_cycles: u64,
    compaction_bytes: u64,
    resident_in_bytes: u64,
    resident_in_transfers: u64,
    resident_out_bytes: u64,
    resident_out_transfers: u64,
}

impl Schedule {
    /// Number of NPU cores the schedule targets.
    #[must_use]
    pub const fn cores(&self) -> u32 {
        self.cores
    }

    /// Timed compute operations in issue order.
    #[must_use]
    pub fn compute(&self) -> &[ScheduledOp] {
        &self.compute
    }

    /// Timed memory operations in issue order.
    #[must_use]
    pub fn mem_ops(&self) -> &[MemOp] {
        &self.mem_ops
    }

    /// End-to-end latency in cycles (Algorithm 1 line 26: the end time
    /// of the last operation, across compute and DMA).
    #[must_use]
    pub const fn latency(&self) -> u64 {
        self.latency
    }

    /// Off-chip traffic statistics.
    #[must_use]
    pub const fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Total transferred bytes (the paper's `data_transfer_size`).
    #[must_use]
    pub fn transfer_bytes(&self) -> u64 {
        self.traffic.total_bytes()
    }

    /// Inter-NPU sharing statistics.
    #[must_use]
    pub const fn spatial_reuse(&self) -> &SpatialReuseStats {
        &self.spatial
    }

    /// Busy cycles of `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn core_busy(&self, core: u32) -> u64 {
        self.core_busy[core as usize]
    }

    /// Mean compute utilization over cores: busy cycles divided by
    /// `latency x cores`.
    #[must_use]
    pub fn compute_utilization(&self) -> f64 {
        if self.latency == 0 {
            return 0.0;
        }
        let busy: u64 = self.core_busy.iter().sum();
        busy as f64 / (self.latency as f64 * f64::from(self.cores))
    }

    /// Mean SPM utilization over the scheduling steps that reported a
    /// sample.
    #[must_use]
    pub fn mean_spm_utilization(&self) -> f64 {
        if self.utilization_samples == 0 {
            0.0
        } else {
            self.utilization_sum / self.utilization_samples as f64
        }
    }

    /// Cycles the DMA engine spent compacting the on-chip buffer
    /// (on-chip copies; not off-chip traffic).
    #[must_use]
    pub const fn compaction_cycles(&self) -> u64 {
        self.compaction_cycles
    }

    /// Bytes moved by on-chip compaction.
    #[must_use]
    pub const fn compaction_bytes(&self) -> u64 {
        self.compaction_bytes
    }

    /// Bytes gathered from the resident input region (on-chip; these
    /// would have been DRAM input loads without residency).
    #[must_use]
    pub const fn resident_in_bytes(&self) -> u64 {
        self.resident_in_bytes
    }

    /// Number of resident input gathers.
    #[must_use]
    pub const fn resident_in_transfers(&self) -> u64 {
        self.resident_in_transfers
    }

    /// Bytes scattered into the resident output region (on-chip; these
    /// would have been DRAM output stores without residency).
    #[must_use]
    pub const fn resident_out_bytes(&self) -> u64 {
        self.resident_out_bytes
    }

    /// Number of resident output scatters.
    #[must_use]
    pub const fn resident_out_transfers(&self) -> u64 {
        self.resident_out_transfers
    }

    /// Test-only: overrides the recorded latency so validator tests
    /// can craft inconsistent schedules the builder cannot produce.
    #[cfg(test)]
    pub(crate) fn set_latency_for_test(&mut self, latency: u64) {
        self.latency = latency;
    }

    pub(crate) fn encode_wire(&self, w: &mut crate::wire::WireWriter) {
        w.u32(self.cores);
        w.usize(self.compute.len());
        for op in &self.compute {
            crate::wire::encode_scheduled_op(w, op);
        }
        w.usize(self.mem_ops.len());
        for op in &self.mem_ops {
            crate::wire::encode_mem_op(w, op);
        }
        w.u64(self.latency);
        w.usize(self.core_busy.len());
        for &busy in &self.core_busy {
            w.u64(busy);
        }
        self.traffic.encode_wire(w);
        self.spatial.encode_wire(w);
        w.f64(self.utilization_sum);
        w.u64(self.utilization_samples);
        w.u64(self.compaction_cycles);
        w.u64(self.compaction_bytes);
        w.u64(self.resident_in_bytes);
        w.u64(self.resident_in_transfers);
        w.u64(self.resident_out_bytes);
        w.u64(self.resident_out_transfers);
    }

    pub(crate) fn decode_wire(
        r: &mut crate::wire::WireReader<'_>,
    ) -> Result<Self, crate::wire::WireError> {
        let cores = r.u32()?;
        let n = r.usize()?;
        let mut compute = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            compute.push(crate::wire::decode_scheduled_op(r)?);
        }
        let n = r.usize()?;
        let mut mem_ops = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            mem_ops.push(crate::wire::decode_mem_op(r)?);
        }
        let latency = r.u64()?;
        let n = r.usize()?;
        let mut core_busy = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            core_busy.push(r.u64()?);
        }
        let traffic = TrafficStats::decode_wire(r)?;
        let spatial = SpatialReuseStats::decode_wire(r)?;
        Ok(Schedule {
            cores,
            compute,
            mem_ops,
            latency,
            core_busy,
            traffic,
            spatial,
            utilization_sum: r.f64()?,
            utilization_samples: r.u64()?,
            compaction_cycles: r.u64()?,
            compaction_bytes: r.u64()?,
            resident_in_bytes: r.u64()?,
            resident_in_transfers: r.u64()?,
            resident_out_bytes: r.u64()?,
            resident_out_transfers: r.u64()?,
        })
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ops on {} cores: {} cycles, {} B transferred",
            self.compute.len(),
            self.cores,
            self.latency,
            self.transfer_bytes()
        )
    }
}

/// Incrementally records a schedule while a scheduler makes decisions.
///
/// Owns the resource [`Timeline`]; schedulers ask it for core/DMA
/// availability, then record memory and compute operations, which are
/// timed and accounted automatically.
#[derive(Debug, Clone)]
pub struct ScheduleBuilder {
    timeline: Timeline,
    compute: Vec<ScheduledOp>,
    mem_ops: Vec<MemOp>,
    traffic: TrafficStats,
    spatial: SpatialReuseStats,
    utilization_sum: f64,
    utilization_samples: u64,
    compaction_cycles: u64,
    compaction_bytes: u64,
    resident_in_bytes: u64,
    resident_in_transfers: u64,
    resident_out_bytes: u64,
    resident_out_transfers: u64,
}

impl ScheduleBuilder {
    /// Creates a builder for `cores` NPU cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    #[must_use]
    pub fn new(cores: u32) -> Self {
        Self {
            timeline: Timeline::new(cores),
            compute: Vec::new(),
            mem_ops: Vec::new(),
            traffic: TrafficStats::default(),
            spatial: SpatialReuseStats::default(),
            utilization_sum: 0.0,
            utilization_samples: 0,
            compaction_cycles: 0,
            compaction_bytes: 0,
            resident_in_bytes: 0,
            resident_in_transfers: 0,
            resident_out_bytes: 0,
            resident_out_transfers: 0,
        }
    }

    /// The resource timeline (read-only).
    #[must_use]
    pub const fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Total bytes transferred so far. Monotone in the commands
    /// recorded, so a partial schedule's value never exceeds the
    /// finished schedule's — the search layer's early-exit cutoff
    /// relies on this.
    #[must_use]
    pub fn transfer_bytes(&self) -> u64 {
        self.traffic.total_bytes()
    }

    /// Records a memory operation taking `dma_cycles` on the shared
    /// channel; returns its `(start, end)`.
    ///
    /// # Errors
    ///
    /// [`TimelineError`] if the cycle arithmetic overflows.
    pub fn record_mem_op(
        &mut self,
        kind: MemOpKind,
        class: TrafficClass,
        tile: TileId,
        bytes: u64,
        dma_cycles: u64,
        for_op: Option<OpId>,
    ) -> Result<(u64, u64), TimelineError> {
        self.record_mem_op_after(kind, class, tile, bytes, dma_cycles, 0, for_op)
    }

    /// Records a memory operation that may not start before `earliest`
    /// (e.g. a write-back of data still being produced); returns its
    /// `(start, end)`.
    ///
    /// # Errors
    ///
    /// [`TimelineError`] if the cycle arithmetic overflows.
    #[allow(clippy::too_many_arguments)]
    pub fn record_mem_op_after(
        &mut self,
        kind: MemOpKind,
        class: TrafficClass,
        tile: TileId,
        bytes: u64,
        dma_cycles: u64,
        earliest: u64,
        for_op: Option<OpId>,
    ) -> Result<(u64, u64), TimelineError> {
        let (start, end) = self.timeline.issue_dma_after(earliest, dma_cycles)?;
        match kind {
            MemOpKind::Load => self.traffic.record_load(class, tile, bytes),
            MemOpKind::Spill | MemOpKind::Store => self.traffic.record_store(class, bytes),
        }
        self.mem_ops.push(MemOp {
            kind,
            class,
            tile,
            bytes,
            start,
            end,
            for_op,
            resident: false,
        });
        Ok((start, end))
    }

    /// Records an on-chip residency transfer — a gather of a resident
    /// input tile ([`MemOpKind::Load`]) or a scatter into the resident
    /// output region ([`MemOpKind::Store`]) — starting no earlier than
    /// `earliest`. The DMA channel is busy for `dma_cycles` but no
    /// off-chip traffic is accounted: the bytes land in the schedule's
    /// resident counters. Returns the `(start, end)` of the transfer.
    ///
    /// # Errors
    ///
    /// [`TimelineError`] if the cycle arithmetic overflows.
    #[allow(clippy::too_many_arguments)]
    pub fn record_resident_mem_op_after(
        &mut self,
        kind: MemOpKind,
        class: TrafficClass,
        tile: TileId,
        bytes: u64,
        dma_cycles: u64,
        earliest: u64,
        for_op: Option<OpId>,
    ) -> Result<(u64, u64), TimelineError> {
        let (start, end) = self.timeline.issue_dma_after(earliest, dma_cycles)?;
        match kind {
            MemOpKind::Load => {
                self.resident_in_bytes += bytes;
                self.resident_in_transfers += 1;
            }
            MemOpKind::Spill | MemOpKind::Store => {
                self.resident_out_bytes += bytes;
                self.resident_out_transfers += 1;
            }
        }
        self.mem_ops.push(MemOp {
            kind,
            class,
            tile,
            bytes,
            start,
            end,
            for_op,
            resident: true,
        });
        Ok((start, end))
    }

    /// Records a compute operation of `cycles` on `core`, starting no
    /// earlier than `earliest`; returns its `(start, end)`.
    ///
    /// # Errors
    ///
    /// [`TimelineError`] if the cycle arithmetic overflows.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn record_compute(
        &mut self,
        op: OpId,
        core: u32,
        earliest: u64,
        cycles: u64,
    ) -> Result<(u64, u64), TimelineError> {
        let (start, end) = self.timeline.issue_compute(core, earliest, cycles)?;
        self.compute.push(ScheduledOp {
            op,
            core,
            start,
            end,
        });
        Ok((start, end))
    }

    /// Records one tile shared by several operations of the current
    /// set (paper Figure 11).
    pub fn record_shared_tile(&mut self, kind: TileKind, bytes: u64, sharers: u32) {
        self.spatial.record(kind, bytes, sharers);
    }

    /// Records an on-chip compaction: the DMA engine is busy for
    /// `dma_cycles` moving `bytes` within the buffer. No off-chip
    /// traffic is accounted. Returns the `(start, end)` of the copy.
    ///
    /// # Errors
    ///
    /// [`TimelineError`] if the cycle arithmetic overflows; the
    /// compaction totals are left untouched on failure.
    pub fn record_compaction(
        &mut self,
        bytes: u64,
        dma_cycles: u64,
    ) -> Result<(u64, u64), TimelineError> {
        let span = self.timeline.issue_dma(dma_cycles)?;
        self.compaction_cycles += dma_cycles;
        self.compaction_bytes += bytes;
        Ok(span)
    }

    /// Records an SPM utilization sample (one per scheduling step).
    pub fn record_spm_utilization(&mut self, utilization: f64) {
        self.utilization_sum += utilization;
        self.utilization_samples += 1;
    }

    /// Finalizes the schedule.
    #[must_use]
    pub fn finish(self) -> Schedule {
        let cores = self.timeline.cores();
        let core_busy = (0..cores).map(|c| self.timeline.core_busy(c)).collect();
        Schedule {
            cores,
            latency: self.timeline.horizon(),
            compute: self.compute,
            mem_ops: self.mem_ops,
            core_busy,
            traffic: self.traffic,
            spatial: self.spatial,
            utilization_sum: self.utilization_sum,
            utilization_samples: self.utilization_samples,
            compaction_cycles: self.compaction_cycles,
            compaction_bytes: self.compaction_bytes,
            resident_in_bytes: self.resident_in_bytes,
            resident_in_transfers: self.resident_in_transfers,
            resident_out_bytes: self.resident_out_bytes,
            resident_out_transfers: self.resident_out_transfers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn in_tile() -> TileId {
        TileId::Input { c: 0, s: 0 }
    }

    #[test]
    fn builder_times_and_accounts() {
        let mut b = ScheduleBuilder::new(2);
        let (_, load_end) = b
            .record_mem_op(
                MemOpKind::Load,
                TrafficClass::Input,
                in_tile(),
                100,
                25,
                Some(OpId::new(0)),
            )
            .unwrap();
        let (s0, e0) = b.record_compute(OpId::new(0), 0, load_end, 50).unwrap();
        let (s1, e1) = b.record_compute(OpId::new(1), 1, 0, 10).unwrap();
        let sched = b.finish();
        assert_eq!((s0, e0), (25, 75));
        assert_eq!((s1, e1), (0, 10));
        assert_eq!(sched.latency(), 75);
        assert_eq!(sched.transfer_bytes(), 100);
        assert_eq!(sched.compute().len(), 2);
        assert_eq!(sched.mem_ops().len(), 1);
        assert_eq!(sched.core_busy(0), 50);
        assert_eq!(sched.core_busy(1), 10);
    }

    #[test]
    fn latency_includes_trailing_dma() {
        let mut b = ScheduleBuilder::new(1);
        b.record_compute(OpId::new(0), 0, 0, 10).unwrap();
        b.record_mem_op(
            MemOpKind::Store,
            TrafficClass::Output,
            TileId::Output { k: 0, s: 0 },
            64,
            500,
            None,
        )
        .unwrap();
        assert_eq!(b.finish().latency(), 500);
    }

    #[test]
    fn compute_utilization() {
        let mut b = ScheduleBuilder::new(2);
        b.record_compute(OpId::new(0), 0, 0, 100).unwrap();
        b.record_compute(OpId::new(1), 1, 0, 50).unwrap();
        let sched = b.finish();
        // busy 150 of 2*100 possible.
        assert!((sched.compute_utilization() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn spatial_reuse_recording() {
        let mut b = ScheduleBuilder::new(2);
        b.record_shared_tile(TileKind::Input, 100, 2);
        b.record_shared_tile(TileKind::Input, 50, 3);
        b.record_shared_tile(TileKind::Weight, 10, 2);
        let sched = b.finish();
        let sr = sched.spatial_reuse();
        assert_eq!(sr.events(TileKind::Input), 2);
        assert_eq!(sr.bytes(TileKind::Input), 100 + 100);
        assert_eq!(sr.events(TileKind::Weight), 1);
        assert_eq!(sr.kinds_shared(), 2);
        assert_eq!(sr.total_events(), 3);
    }

    #[test]
    fn spm_utilization_sampling() {
        let mut b = ScheduleBuilder::new(1);
        b.record_spm_utilization(0.5);
        b.record_spm_utilization(1.0);
        let sched = b.finish();
        assert!((sched.mean_spm_utilization() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn resident_transfers_occupy_dma_without_traffic() {
        let mut b = ScheduleBuilder::new(1);
        b.record_resident_mem_op_after(
            MemOpKind::Load,
            TrafficClass::Input,
            in_tile(),
            100,
            25,
            0,
            Some(OpId::new(0)),
        )
        .unwrap();
        b.record_resident_mem_op_after(
            MemOpKind::Store,
            TrafficClass::Output,
            TileId::Output { k: 0, s: 0 },
            64,
            8,
            0,
            None,
        )
        .unwrap();
        let sched = b.finish();
        // The DMA channel was busy — latency covers both spans — but
        // no off-chip traffic was accounted.
        assert_eq!(sched.latency(), 33);
        assert_eq!(sched.transfer_bytes(), 0);
        assert_eq!(sched.resident_in_bytes(), 100);
        assert_eq!(sched.resident_in_transfers(), 1);
        assert_eq!(sched.resident_out_bytes(), 64);
        assert_eq!(sched.resident_out_transfers(), 1);
        assert!(sched.mem_ops().iter().all(|m| m.resident));
    }

    #[test]
    fn empty_schedule_is_well_formed() {
        let sched = ScheduleBuilder::new(1).finish();
        assert_eq!(sched.latency(), 0);
        assert_eq!(sched.transfer_bytes(), 0);
        assert_eq!(sched.compute_utilization(), 0.0);
        assert_eq!(sched.mean_spm_utilization(), 0.0);
    }

    #[test]
    fn wire_round_trip_is_byte_exact() {
        let mut b = ScheduleBuilder::new(2);
        let (_, load_end) = b
            .record_mem_op(
                MemOpKind::Load,
                TrafficClass::Input,
                in_tile(),
                100,
                25,
                Some(OpId::new(0)),
            )
            .unwrap();
        b.record_compute(OpId::new(0), 0, load_end, 50).unwrap();
        b.record_shared_tile(TileKind::Weight, 32, 2);
        b.record_spm_utilization(0.625);
        b.record_compaction(16, 4).unwrap();
        b.record_resident_mem_op_after(
            MemOpKind::Store,
            TrafficClass::Output,
            TileId::Output { k: 0, s: 0 },
            64,
            8,
            0,
            None,
        )
        .unwrap();
        let sched = b.finish();

        let mut w = crate::wire::WireWriter::new();
        sched.encode_wire(&mut w);
        let bytes = w.into_bytes();
        let mut r = crate::wire::WireReader::new(&bytes);
        let back = Schedule::decode_wire(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, sched);

        // Re-encoding the decoded value reproduces the same bytes:
        // the codec is canonical.
        let mut w2 = crate::wire::WireWriter::new();
        back.encode_wire(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn display_summarizes() {
        let mut b = ScheduleBuilder::new(2);
        b.record_compute(OpId::new(0), 0, 0, 10).unwrap();
        let s = b.finish().to_string();
        assert!(s.contains("1 ops"));
        assert!(s.contains("2 cores"));
    }
}
