//! Off-chip traffic accounting.

use flexer_tiling::{TileId, TileKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Traffic classification by data type (paper Figure 10's colors).
///
/// Output tiles appear in two classes: spills and reloads of
/// not-yet-final accumulator tiles are *partial-sum* traffic, while the
/// mandatory store of a finished tile is *output* traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Input activation loads.
    Input,
    /// Weight loads.
    Weight,
    /// Partial-sum spills and reloads.
    Psum,
    /// Final output stores.
    Output,
}

impl TrafficClass {
    /// All classes in display order.
    #[must_use]
    pub const fn all() -> [TrafficClass; 4] {
        [
            TrafficClass::Input,
            TrafficClass::Weight,
            TrafficClass::Psum,
            TrafficClass::Output,
        ]
    }

    const fn index(self) -> usize {
        match self {
            TrafficClass::Input => 0,
            TrafficClass::Weight => 1,
            TrafficClass::Psum => 2,
            TrafficClass::Output => 3,
        }
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrafficClass::Input => "IN",
            TrafficClass::Weight => "WT",
            TrafficClass::Psum => "PS",
            TrafficClass::Output => "OT",
        };
        f.write_str(s)
    }
}

/// Accumulated off-chip traffic of one schedule, split by class, with
/// per-tile load counts for the reload analysis of Figure 10.
///
/// # Examples
///
/// ```
/// use flexer_sim::{TrafficClass, TrafficStats};
/// use flexer_tiling::{TileId, TileKind};
///
/// let mut t = TrafficStats::default();
/// let tile = TileId::Weight { k: 0, c: 0 };
/// t.record_load(TrafficClass::Weight, tile, 128);
/// t.record_load(TrafficClass::Weight, tile, 128);
/// t.record_store(TrafficClass::Output, 64);
/// assert_eq!(t.total_bytes(), 320);
/// assert_eq!(t.class_bytes(TrafficClass::Weight), 256);
/// assert_eq!(t.max_loads(TileKind::Weight), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficStats {
    bytes: [u64; 4],
    transfers: [u64; 4],
    loads_per_tile: BTreeMap<TileId, u32>,
}

impl TrafficStats {
    /// Records a DRAM-to-SPM load of `bytes` for `tile`.
    pub fn record_load(&mut self, class: TrafficClass, tile: TileId, bytes: u64) {
        self.bytes[class.index()] += bytes;
        self.transfers[class.index()] += 1;
        *self.loads_per_tile.entry(tile).or_default() += 1;
    }

    /// Records an SPM-to-DRAM store (spill write-back or final output
    /// store) of `bytes`.
    pub fn record_store(&mut self, class: TrafficClass, bytes: u64) {
        self.bytes[class.index()] += bytes;
        self.transfers[class.index()] += 1;
    }

    /// Total transferred bytes over all classes — the paper's
    /// `data_transfer_size`.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Transferred bytes of one class.
    #[must_use]
    pub const fn class_bytes(&self, class: TrafficClass) -> u64 {
        self.bytes[class.index()]
    }

    /// Number of DMA transfers of one class.
    #[must_use]
    pub const fn class_transfers(&self, class: TrafficClass) -> u64 {
        self.transfers[class.index()]
    }

    /// Per-tile load counts (1 = loaded once, >1 = reloaded).
    #[must_use]
    pub fn loads_per_tile(&self) -> &BTreeMap<TileId, u32> {
        &self.loads_per_tile
    }

    /// The maximum load count over tiles of `kind` (0 if none loaded).
    #[must_use]
    pub fn max_loads(&self, kind: TileKind) -> u32 {
        self.loads_per_tile
            .iter()
            .filter(|(t, _)| t.kind() == kind)
            .map(|(_, &n)| n)
            .max()
            .unwrap_or(0)
    }

    /// The mean load count over tiles of `kind` that were loaded at
    /// least once (0.0 if none).
    #[must_use]
    pub fn mean_loads(&self, kind: TileKind) -> f64 {
        let counts: Vec<u32> = self
            .loads_per_tile
            .iter()
            .filter(|(t, _)| t.kind() == kind)
            .map(|(_, &n)| n)
            .collect();
        if counts.is_empty() {
            0.0
        } else {
            counts.iter().map(|&n| f64::from(n)).sum::<f64>() / counts.len() as f64
        }
    }

    /// Whether tiles of `kind` show *reload variation* — different
    /// tiles loaded a different number of times. Loop-order schedules
    /// never do ("all tiles of a given type are reloaded the same
    /// number of times", §5); OoO schedules typically do.
    #[must_use]
    pub fn has_reload_variation(&self, kind: TileKind) -> bool {
        let mut counts = self
            .loads_per_tile
            .iter()
            .filter(|(t, _)| t.kind() == kind)
            .map(|(_, &n)| n);
        match counts.next() {
            None => false,
            Some(first) => counts.any(|n| n != first),
        }
    }

    /// Merges another stats record into this one (used to aggregate
    /// layers into a network; tile identities are per-layer, so load
    /// counts merge by maximum to stay meaningful per tile).
    pub fn merge_bytes(&mut self, other: &TrafficStats) {
        for i in 0..4 {
            self.bytes[i] += other.bytes[i];
            self.transfers[i] += other.transfers[i];
        }
    }

    pub(crate) fn encode_wire(&self, w: &mut crate::wire::WireWriter) {
        for &b in &self.bytes {
            w.u64(b);
        }
        for &t in &self.transfers {
            w.u64(t);
        }
        w.usize(self.loads_per_tile.len());
        // BTreeMap iteration is key-ordered, so the encoding is
        // canonical for a given value.
        for (&tile, &count) in &self.loads_per_tile {
            crate::wire::encode_tile_id(w, tile);
            w.u32(count);
        }
    }

    pub(crate) fn decode_wire(
        r: &mut crate::wire::WireReader<'_>,
    ) -> Result<Self, crate::wire::WireError> {
        let mut out = TrafficStats::default();
        for b in &mut out.bytes {
            *b = r.u64()?;
        }
        for t in &mut out.transfers {
            *t = r.u64()?;
        }
        let n = r.usize()?;
        for _ in 0..n {
            let tile = crate::wire::decode_tile_id(r)?;
            let count = r.u32()?;
            out.loads_per_tile.insert(tile, count);
        }
        Ok(out)
    }
}

impl fmt::Display for TrafficStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IN {} B, WT {} B, PS {} B, OT {} B (total {} B)",
            self.class_bytes(TrafficClass::Input),
            self.class_bytes(TrafficClass::Weight),
            self.class_bytes(TrafficClass::Psum),
            self.class_bytes(TrafficClass::Output),
            self.total_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn in_tile(n: u32) -> TileId {
        TileId::Input { c: n, s: 0 }
    }

    #[test]
    fn totals_sum_classes() {
        let mut t = TrafficStats::default();
        t.record_load(TrafficClass::Input, in_tile(0), 10);
        t.record_store(TrafficClass::Psum, 20);
        t.record_store(TrafficClass::Output, 30);
        assert_eq!(t.total_bytes(), 60);
        assert_eq!(t.class_bytes(TrafficClass::Input), 10);
        assert_eq!(t.class_bytes(TrafficClass::Weight), 0);
        assert_eq!(t.class_transfers(TrafficClass::Psum), 1);
    }

    #[test]
    fn reload_counting() {
        let mut t = TrafficStats::default();
        t.record_load(TrafficClass::Input, in_tile(0), 10);
        t.record_load(TrafficClass::Input, in_tile(0), 10);
        t.record_load(TrafficClass::Input, in_tile(1), 10);
        assert_eq!(t.max_loads(TileKind::Input), 2);
        assert!((t.mean_loads(TileKind::Input) - 1.5).abs() < 1e-9);
        assert_eq!(t.max_loads(TileKind::Weight), 0);
        assert_eq!(t.mean_loads(TileKind::Weight), 0.0);
    }

    #[test]
    fn reload_variation_detection() {
        let mut t = TrafficStats::default();
        t.record_load(TrafficClass::Input, in_tile(0), 10);
        t.record_load(TrafficClass::Input, in_tile(1), 10);
        assert!(!t.has_reload_variation(TileKind::Input));
        t.record_load(TrafficClass::Input, in_tile(1), 10);
        assert!(t.has_reload_variation(TileKind::Input));
        assert!(!t.has_reload_variation(TileKind::Output));
    }

    #[test]
    fn merge_accumulates_bytes() {
        let mut a = TrafficStats::default();
        a.record_store(TrafficClass::Output, 5);
        let mut b = TrafficStats::default();
        b.record_store(TrafficClass::Output, 7);
        b.record_load(TrafficClass::Weight, TileId::Weight { k: 0, c: 0 }, 3);
        a.merge_bytes(&b);
        assert_eq!(a.class_bytes(TrafficClass::Output), 12);
        assert_eq!(a.class_bytes(TrafficClass::Weight), 3);
        assert_eq!(a.class_transfers(TrafficClass::Output), 2);
    }

    #[test]
    fn display_lists_all_classes() {
        let t = TrafficStats::default();
        let s = t.to_string();
        for c in ["IN", "WT", "PS", "OT"] {
            assert!(s.contains(c), "{s}");
        }
    }
}
