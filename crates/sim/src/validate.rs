//! Structural legality checks for schedules.

use crate::schedule::{MemOpKind, Schedule};
use flexer_tiling::{Dfg, OpId, TileId};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A violation found by [`validate_schedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// An operation of the DFG was never scheduled, or scheduled more
    /// than once.
    OpCount {
        /// The offending operation.
        op: OpId,
        /// How often it was scheduled.
        times: usize,
    },
    /// An operation started before its partial-sum predecessor ended.
    DependencyViolated {
        /// The dependent operation.
        op: OpId,
        /// Its predecessor.
        pred: OpId,
    },
    /// Two operations overlapped on the same core.
    CoreOverlap {
        /// The core.
        core: u32,
        /// First operation.
        a: OpId,
        /// Second operation.
        b: OpId,
    },
    /// Two memory operations overlapped on the DMA channel.
    DmaOverlap,
    /// A load feeding an operation finished after the operation
    /// started.
    LoadAfterUse {
        /// The operation.
        op: OpId,
    },
    /// An operation consumed an operand tile that no load brought
    /// on-chip before the operation started. Catches consumers of a
    /// shared tile beyond the one the load's `for_op` tag names.
    OperandNotLoaded {
        /// The operation.
        op: OpId,
        /// The operand tile that was never loaded in time.
        tile: TileId,
    },
    /// The recorded latency does not equal the latest end time (with
    /// slack of at most the schedule's compaction cycles, which occupy
    /// the DMA channel without appearing as memory operations).
    LatencyMismatch {
        /// Recorded latency.
        recorded: u64,
        /// Latest end time over all operations.
        actual: u64,
    },
    /// The schedule misses the mandatory final store of an output
    /// tile, or transfers less output than the layer produces.
    MissingOutput {
        /// Output bytes the layer produces.
        expected: u64,
        /// Output bytes actually stored.
        stored: u64,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::OpCount { op, times } => {
                write!(f, "{op} scheduled {times} times (expected exactly once)")
            }
            ValidationError::DependencyViolated { op, pred } => {
                write!(f, "{op} started before its predecessor {pred} finished")
            }
            ValidationError::CoreOverlap { core, a, b } => {
                write!(f, "{a} and {b} overlap on core {core}")
            }
            ValidationError::DmaOverlap => {
                write!(f, "memory operations overlap on the DMA channel")
            }
            ValidationError::LoadAfterUse { op } => {
                write!(f, "a load for {op} completed after the operation started")
            }
            ValidationError::OperandNotLoaded { op, tile } => {
                write!(f, "no load of operand {tile} completed before {op} started")
            }
            ValidationError::LatencyMismatch { recorded, actual } => {
                write!(f, "recorded latency {recorded} != actual horizon {actual}")
            }
            ValidationError::MissingOutput { expected, stored } => {
                write!(f, "stored {stored} output bytes, layer produces {expected}")
            }
        }
    }
}

impl Error for ValidationError {}

/// Validates that `schedule` is a legal execution of `dfg`:
///
/// 1. every DFG operation is scheduled exactly once;
/// 2. partial-sum dependencies are respected;
/// 3. operations on the same core do not overlap;
/// 4. memory operations do not overlap on the shared DMA channel;
/// 5. loads issued for an operation complete before it starts, and
///    every input/weight operand of every operation — not only the
///    consumer a load's `for_op` tag happens to name — is covered by
///    a load that completes before the operation starts;
/// 6. the recorded latency equals the latest end time, allowing slack
///    of at most the schedule's compaction cycles above it;
/// 7. at least the layer's full output volume is stored back.
///
/// # Errors
///
/// Returns the first violation found.
pub fn validate_schedule(dfg: &Dfg, schedule: &Schedule) -> Result<(), ValidationError> {
    // 1. Exactly-once scheduling.
    let mut times = vec![0usize; dfg.num_ops()];
    let mut span: BTreeMap<OpId, (u64, u64)> = BTreeMap::new();
    for s in schedule.compute() {
        if s.op.index() >= dfg.num_ops() {
            return Err(ValidationError::OpCount { op: s.op, times: 0 });
        }
        times[s.op.index()] += 1;
        span.insert(s.op, (s.start, s.end));
    }
    for (i, &t) in times.iter().enumerate() {
        if t != 1 {
            return Err(ValidationError::OpCount {
                op: OpId::new(i as u32),
                times: t,
            });
        }
    }

    // 2. Dependencies.
    for op in dfg.ops() {
        if let Some(pred) = dfg.pred(op.id()) {
            let (start, _) = span[&op.id()];
            let (_, pred_end) = span[&pred];
            if start < pred_end {
                return Err(ValidationError::DependencyViolated { op: op.id(), pred });
            }
        }
    }

    // 3. Core exclusivity.
    let mut by_core: BTreeMap<u32, Vec<(u64, u64, OpId)>> = BTreeMap::new();
    for s in schedule.compute() {
        by_core
            .entry(s.core)
            .or_default()
            .push((s.start, s.end, s.op));
    }
    for (core, mut ops) in by_core {
        ops.sort_unstable();
        for pair in ops.windows(2) {
            if pair[1].0 < pair[0].1 {
                return Err(ValidationError::CoreOverlap {
                    core,
                    a: pair[0].2,
                    b: pair[1].2,
                });
            }
        }
    }

    // 4. DMA exclusivity.
    let mut dma: Vec<(u64, u64)> = schedule
        .mem_ops()
        .iter()
        .map(|m| (m.start, m.end))
        .collect();
    dma.sort_unstable();
    for pair in dma.windows(2) {
        if pair[1].0 < pair[0].1 {
            return Err(ValidationError::DmaOverlap);
        }
    }

    // 5a. Tagged loads precede the consumer they were issued for.
    for m in schedule.mem_ops() {
        if m.kind == MemOpKind::Load {
            if let Some(op) = m.for_op {
                if let Some(&(start, _)) = span.get(&op) {
                    if m.end > start {
                        return Err(ValidationError::LoadAfterUse { op });
                    }
                }
            }
        }
    }

    // 5b. Every input/weight operand of every operation was brought
    // on-chip in time. A shared tile is loaded once (loads are 1:1
    // with mem_ops) but consumed by several operations; the `for_op`
    // tag names only one representative, so checking tagged loads
    // alone (5a) silently skips the other consumers.
    for op in dfg.ops() {
        let (start, _) = span[&op.id()];
        for tile in [op.input(), op.weight()] {
            let loaded = schedule
                .mem_ops()
                .iter()
                .any(|m| m.kind == MemOpKind::Load && m.tile == tile && m.end <= start);
            if !loaded {
                return Err(ValidationError::OperandNotLoaded { op: op.id(), tile });
            }
        }
    }

    // 6. Latency.
    let actual = schedule
        .compute()
        .iter()
        .map(|s| s.end)
        .chain(schedule.mem_ops().iter().map(|m| m.end))
        .max()
        .unwrap_or(0);
    // On-chip compaction occupies the DMA channel without appearing
    // as a memory operation, so the recorded latency may exceed the
    // last operation's end — but never undercut it, and never by more
    // than the total compaction cycles.
    let recorded = schedule.latency();
    if recorded < actual || recorded - actual > schedule.compaction_cycles() {
        return Err(ValidationError::LatencyMismatch { recorded, actual });
    }

    // 7. Full output volume stored.
    let expected = dfg.unique_bytes(flexer_tiling::TileKind::Output);
    let stored: u64 = schedule
        .mem_ops()
        .iter()
        .filter(|m| m.kind == MemOpKind::Store)
        .map(|m| m.bytes)
        .sum();
    if stored < expected {
        return Err(ValidationError::MissingOutput { expected, stored });
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ScheduleBuilder;
    use crate::traffic::TrafficClass;
    use flexer_arch::{ArchConfig, ArchPreset, PerfModel, SystolicModel};
    use flexer_model::ConvLayer;
    use flexer_tiling::{Dataflow, Dfg, TileId, TilingFactors};

    fn tiny_dfg() -> (Dfg, SystolicModel, ArchConfig) {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let layer = ConvLayer::new("v", 8, 8, 8, 8).unwrap();
        let model = SystolicModel::new(&arch);
        let factors = TilingFactors::normalized(&layer, 1, 2, 1, 1);
        let dfg = Dfg::build(&layer, factors, Dataflow::Kcs, &model, &arch).unwrap();
        (dfg, model, arch)
    }

    /// Hand-schedules the 2-op chain: all loads, then computes, with
    /// the final store only when `store` is true.
    fn hand_schedule(dfg: &Dfg, model: &SystolicModel, store: bool) -> Schedule {
        let mut b = ScheduleBuilder::new(2);
        let mut clock = 0;
        for op in dfg.ops() {
            for tile in [op.input(), op.weight()] {
                let bytes = dfg.tile_bytes(tile);
                let class = match tile {
                    TileId::Input { .. } => TrafficClass::Input,
                    _ => TrafficClass::Weight,
                };
                let (_, end) = b
                    .record_mem_op(
                        MemOpKind::Load,
                        class,
                        tile,
                        bytes,
                        model.dma_cycles(bytes),
                        Some(op.id()),
                    )
                    .unwrap();
                clock = clock.max(end);
            }
            let (_, end) = b.record_compute(op.id(), 0, clock, op.latency()).unwrap();
            clock = end;
        }
        if store {
            let out = TileId::Output { k: 0, s: 0 };
            let bytes = dfg.tile_bytes(out);
            b.record_mem_op(
                MemOpKind::Store,
                TrafficClass::Output,
                out,
                bytes,
                model.dma_cycles(bytes),
                None,
            )
            .unwrap();
        }
        b.finish()
    }

    fn legal_schedule(dfg: &Dfg, model: &SystolicModel) -> Schedule {
        hand_schedule(dfg, model, true)
    }

    #[test]
    fn legal_schedule_passes() {
        let (dfg, model, _) = tiny_dfg();
        let sched = legal_schedule(&dfg, &model);
        validate_schedule(&dfg, &sched).unwrap();
    }

    #[test]
    fn missing_op_detected() {
        let (dfg, model, _) = tiny_dfg();
        let mut b = ScheduleBuilder::new(1);
        b.record_compute(dfg.ops()[0].id(), 0, 0, 10).unwrap();
        let err = validate_schedule(&dfg, &b.finish()).unwrap_err();
        assert!(
            matches!(err, ValidationError::OpCount { times: 0, .. }),
            "{err}"
        );
        let _ = model;
    }

    #[test]
    fn dependency_violation_detected() {
        let (dfg, _, _) = tiny_dfg();
        let mut b = ScheduleBuilder::new(2);
        // Schedule dependent op at time 0 on core 1 while the pred
        // runs 0..10 on core 0.
        b.record_compute(dfg.ops()[0].id(), 0, 0, 10).unwrap();
        b.record_compute(dfg.ops()[1].id(), 1, 0, 10).unwrap();
        let err = validate_schedule(&dfg, &b.finish()).unwrap_err();
        assert!(
            matches!(err, ValidationError::DependencyViolated { .. }),
            "{err}"
        );
    }

    #[test]
    fn duplicate_op_detected() {
        let (dfg, _, _) = tiny_dfg();
        let mut b = ScheduleBuilder::new(1);
        b.record_compute(dfg.ops()[0].id(), 0, 0, 10).unwrap();
        b.record_compute(dfg.ops()[0].id(), 0, 0, 10).unwrap();
        b.record_compute(dfg.ops()[1].id(), 0, 0, 10).unwrap();
        let err = validate_schedule(&dfg, &b.finish()).unwrap_err();
        assert!(
            matches!(err, ValidationError::OpCount { times: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn missing_output_store_detected() {
        let (dfg, model, _) = tiny_dfg();
        // Fully legal except the final store is dropped.
        let sched = hand_schedule(&dfg, &model, false);
        let err = validate_schedule(&dfg, &sched).unwrap_err();
        assert!(
            matches!(err, ValidationError::MissingOutput { .. }),
            "{err}"
        );
    }

    #[test]
    fn load_after_use_detected() {
        let (dfg, model, _) = tiny_dfg();
        let mut b = ScheduleBuilder::new(1);
        // Compute first, then its load — illegal.
        b.record_compute(dfg.ops()[0].id(), 0, 0, 10).unwrap();
        b.record_compute(dfg.ops()[1].id(), 0, 10, 10).unwrap();
        let out = TileId::Output { k: 0, s: 0 };
        b.record_mem_op(
            MemOpKind::Store,
            TrafficClass::Output,
            out,
            dfg.tile_bytes(out),
            model.dma_cycles(dfg.tile_bytes(out)),
            None,
        )
        .unwrap();
        b.record_mem_op(
            MemOpKind::Load,
            TrafficClass::Input,
            dfg.ops()[0].input(),
            8,
            10,
            Some(dfg.ops()[0].id()),
        )
        .unwrap();
        let err = validate_schedule(&dfg, &b.finish()).unwrap_err();
        assert!(matches!(err, ValidationError::LoadAfterUse { .. }), "{err}");
    }

    /// Regression for the `for_op` under-attribution bug: a tile
    /// shared by two operations is loaded once and tagged for only
    /// one of them, so the tagged check (5a) is blind to the other
    /// consumer starting before the load completes.
    #[test]
    fn shared_operand_untagged_consumer_detected() {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let layer = ConvLayer::new("v", 8, 8, 8, 8).unwrap();
        let model = SystolicModel::new(&arch);
        // Split along K: two independent ops consuming the same input
        // tile with distinct weights and outputs.
        let factors = TilingFactors::normalized(&layer, 2, 1, 1, 1);
        let dfg = Dfg::build(&layer, factors, Dataflow::Kcs, &model, &arch).unwrap();
        let (op0, op1) = (&dfg.ops()[0], &dfg.ops()[1]);
        assert_eq!(op0.input(), op1.input(), "ops must share the input tile");

        let mut b = ScheduleBuilder::new(2);
        // Both weights first, then the shared input tagged for op0.
        let (_, w0_end) = b
            .record_mem_op(
                MemOpKind::Load,
                TrafficClass::Weight,
                op0.weight(),
                8,
                10,
                Some(op0.id()),
            )
            .unwrap();
        let (_, w1_end) = b
            .record_mem_op(
                MemOpKind::Load,
                TrafficClass::Weight,
                op1.weight(),
                8,
                10,
                Some(op1.id()),
            )
            .unwrap();
        let (_, in_end) = b
            .record_mem_op(
                MemOpKind::Load,
                TrafficClass::Input,
                op0.input(),
                8,
                10,
                Some(op0.id()),
            )
            .unwrap();
        // op1 starts before the shared input finishes loading; op0
        // waits for it, so the tagged check alone stays green.
        let (op1_start, _) = b.record_compute(op1.id(), 1, w1_end, 10).unwrap();
        assert!(op1_start < in_end);
        b.record_compute(op0.id(), 0, in_end, 10).unwrap();
        let _ = w0_end;
        for op in [op0, op1] {
            let out = op.output();
            let bytes = dfg.tile_bytes(out);
            b.record_mem_op(
                MemOpKind::Store,
                TrafficClass::Output,
                out,
                bytes,
                model.dma_cycles(bytes),
                None,
            )
            .unwrap();
        }
        let err = validate_schedule(&dfg, &b.finish()).unwrap_err();
        assert!(
            matches!(err, ValidationError::OperandNotLoaded { op, .. } if op == op1.id()),
            "{err}"
        );
    }

    /// Regression for the unbounded-slack bug: with any compaction at
    /// all, the old check accepted an arbitrarily inflated latency.
    #[test]
    fn latency_slack_bounded_by_compaction() {
        let (dfg, model, _) = tiny_dfg();
        // Legal schedule plus compaction: slack within the compaction
        // cycles passes ...
        let mut b = ScheduleBuilder::new(2);
        let sched = {
            let mut clock = 0;
            for op in dfg.ops() {
                for tile in [op.input(), op.weight()] {
                    let bytes = dfg.tile_bytes(tile);
                    let class = match tile {
                        TileId::Input { .. } => TrafficClass::Input,
                        _ => TrafficClass::Weight,
                    };
                    let (_, end) = b
                        .record_mem_op(
                            MemOpKind::Load,
                            class,
                            tile,
                            bytes,
                            model.dma_cycles(bytes),
                            Some(op.id()),
                        )
                        .unwrap();
                    clock = clock.max(end);
                }
                let (_, end) = b.record_compute(op.id(), 0, clock, op.latency()).unwrap();
                clock = end;
            }
            let out = TileId::Output { k: 0, s: 0 };
            let bytes = dfg.tile_bytes(out);
            b.record_mem_op(
                MemOpKind::Store,
                TrafficClass::Output,
                out,
                bytes,
                model.dma_cycles(bytes),
                None,
            )
            .unwrap();
            // Trailing compaction extends the horizon past the last
            // mem op by exactly its own cycles — legal.
            b.record_compaction(64, 7).unwrap();
            b.finish()
        };
        assert_eq!(sched.compaction_cycles(), 7);
        validate_schedule(&dfg, &sched).unwrap();

        // ... but slack beyond the compaction cycles is rejected. The
        // old check accepted ANY slack once compaction_cycles > 0.
        let mut inflated = sched;
        inflated.set_latency_for_test(inflated.latency() + 8);
        let err = validate_schedule(&dfg, &inflated).unwrap_err();
        assert!(
            matches!(err, ValidationError::LatencyMismatch { .. }),
            "{err}"
        );
    }
}
