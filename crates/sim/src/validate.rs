//! Structural legality checks for schedules.

use crate::schedule::{MemOpKind, Schedule};
use flexer_tiling::{Dfg, OpId};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A violation found by [`validate_schedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// An operation of the DFG was never scheduled, or scheduled more
    /// than once.
    OpCount {
        /// The offending operation.
        op: OpId,
        /// How often it was scheduled.
        times: usize,
    },
    /// An operation started before its partial-sum predecessor ended.
    DependencyViolated {
        /// The dependent operation.
        op: OpId,
        /// Its predecessor.
        pred: OpId,
    },
    /// Two operations overlapped on the same core.
    CoreOverlap {
        /// The core.
        core: u32,
        /// First operation.
        a: OpId,
        /// Second operation.
        b: OpId,
    },
    /// Two memory operations overlapped on the DMA channel.
    DmaOverlap,
    /// A load feeding an operation finished after the operation
    /// started.
    LoadAfterUse {
        /// The operation.
        op: OpId,
    },
    /// The recorded latency does not equal the latest end time.
    LatencyMismatch {
        /// Recorded latency.
        recorded: u64,
        /// Latest end time over all operations.
        actual: u64,
    },
    /// The schedule misses the mandatory final store of an output
    /// tile, or transfers less output than the layer produces.
    MissingOutput {
        /// Output bytes the layer produces.
        expected: u64,
        /// Output bytes actually stored.
        stored: u64,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::OpCount { op, times } => {
                write!(f, "{op} scheduled {times} times (expected exactly once)")
            }
            ValidationError::DependencyViolated { op, pred } => {
                write!(f, "{op} started before its predecessor {pred} finished")
            }
            ValidationError::CoreOverlap { core, a, b } => {
                write!(f, "{a} and {b} overlap on core {core}")
            }
            ValidationError::DmaOverlap => write!(f, "memory operations overlap on the DMA channel"),
            ValidationError::LoadAfterUse { op } => {
                write!(f, "a load for {op} completed after the operation started")
            }
            ValidationError::LatencyMismatch { recorded, actual } => {
                write!(f, "recorded latency {recorded} != actual horizon {actual}")
            }
            ValidationError::MissingOutput { expected, stored } => {
                write!(f, "stored {stored} output bytes, layer produces {expected}")
            }
        }
    }
}

impl Error for ValidationError {}

/// Validates that `schedule` is a legal execution of `dfg`:
///
/// 1. every DFG operation is scheduled exactly once;
/// 2. partial-sum dependencies are respected;
/// 3. operations on the same core do not overlap;
/// 4. memory operations do not overlap on the shared DMA channel;
/// 5. loads issued for an operation complete before it starts;
/// 6. the recorded latency equals the latest end time;
/// 7. at least the layer's full output volume is stored back.
///
/// # Errors
///
/// Returns the first violation found.
pub fn validate_schedule(dfg: &Dfg, schedule: &Schedule) -> Result<(), ValidationError> {
    // 1. Exactly-once scheduling.
    let mut times = vec![0usize; dfg.num_ops()];
    let mut span: BTreeMap<OpId, (u64, u64)> = BTreeMap::new();
    for s in schedule.compute() {
        if s.op.index() >= dfg.num_ops() {
            return Err(ValidationError::OpCount { op: s.op, times: 0 });
        }
        times[s.op.index()] += 1;
        span.insert(s.op, (s.start, s.end));
    }
    for (i, &t) in times.iter().enumerate() {
        if t != 1 {
            return Err(ValidationError::OpCount {
                op: OpId::new(i as u32),
                times: t,
            });
        }
    }

    // 2. Dependencies.
    for op in dfg.ops() {
        if let Some(pred) = dfg.pred(op.id()) {
            let (start, _) = span[&op.id()];
            let (_, pred_end) = span[&pred];
            if start < pred_end {
                return Err(ValidationError::DependencyViolated {
                    op: op.id(),
                    pred,
                });
            }
        }
    }

    // 3. Core exclusivity.
    let mut by_core: BTreeMap<u32, Vec<(u64, u64, OpId)>> = BTreeMap::new();
    for s in schedule.compute() {
        by_core
            .entry(s.core)
            .or_default()
            .push((s.start, s.end, s.op));
    }
    for (core, mut ops) in by_core {
        ops.sort_unstable();
        for pair in ops.windows(2) {
            if pair[1].0 < pair[0].1 {
                return Err(ValidationError::CoreOverlap {
                    core,
                    a: pair[0].2,
                    b: pair[1].2,
                });
            }
        }
    }

    // 4. DMA exclusivity.
    let mut dma: Vec<(u64, u64)> = schedule.mem_ops().iter().map(|m| (m.start, m.end)).collect();
    dma.sort_unstable();
    for pair in dma.windows(2) {
        if pair[1].0 < pair[0].1 {
            return Err(ValidationError::DmaOverlap);
        }
    }

    // 5. Loads precede their consumers.
    for m in schedule.mem_ops() {
        if m.kind == MemOpKind::Load {
            if let Some(op) = m.for_op {
                if let Some(&(start, _)) = span.get(&op) {
                    if m.end > start {
                        return Err(ValidationError::LoadAfterUse { op });
                    }
                }
            }
        }
    }

    // 6. Latency.
    let actual = schedule
        .compute()
        .iter()
        .map(|s| s.end)
        .chain(schedule.mem_ops().iter().map(|m| m.end))
        .max()
        .unwrap_or(0);
    // On-chip compaction occupies the DMA channel without appearing
    // as a memory operation, so the recorded latency may exceed the
    // last operation's end — but never undercut it.
    let undercut = schedule.latency() < actual;
    let slack_without_compaction =
        schedule.compaction_cycles() == 0 && schedule.latency() != actual;
    if undercut || slack_without_compaction {
        return Err(ValidationError::LatencyMismatch {
            recorded: schedule.latency(),
            actual,
        });
    }

    // 7. Full output volume stored.
    let expected = dfg.unique_bytes(flexer_tiling::TileKind::Output);
    let stored: u64 = schedule
        .mem_ops()
        .iter()
        .filter(|m| m.kind == MemOpKind::Store)
        .map(|m| m.bytes)
        .sum();
    if stored < expected {
        return Err(ValidationError::MissingOutput { expected, stored });
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ScheduleBuilder;
    use crate::traffic::TrafficClass;
    use flexer_arch::{ArchConfig, ArchPreset, PerfModel, SystolicModel};
    use flexer_model::ConvLayer;
    use flexer_tiling::{Dataflow, Dfg, TileId, TilingFactors};

    fn tiny_dfg() -> (Dfg, SystolicModel, ArchConfig) {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let layer = ConvLayer::new("v", 8, 8, 8, 8).unwrap();
        let model = SystolicModel::new(&arch);
        let factors = TilingFactors::normalized(&layer, 1, 2, 1, 1);
        let dfg = Dfg::build(&layer, factors, Dataflow::Kcs, &model, &arch).unwrap();
        (dfg, model, arch)
    }

    /// Hand-schedules the 2-op chain legally.
    fn legal_schedule(dfg: &Dfg, model: &SystolicModel) -> Schedule {
        let mut b = ScheduleBuilder::new(2);
        let mut clock = 0;
        for op in dfg.ops() {
            for tile in [op.input(), op.weight()] {
                let bytes = dfg.tile_bytes(tile);
                let class = match tile {
                    TileId::Input { .. } => TrafficClass::Input,
                    _ => TrafficClass::Weight,
                };
                let (_, end) = b.record_mem_op(
                    MemOpKind::Load,
                    class,
                    tile,
                    bytes,
                    model.dma_cycles(bytes),
                    Some(op.id()),
                );
                clock = clock.max(end);
            }
            let (_, end) = b.record_compute(op.id(), 0, clock, op.latency());
            clock = end;
        }
        let out = TileId::Output { k: 0, s: 0 };
        let bytes = dfg.tile_bytes(out);
        b.record_mem_op(
            MemOpKind::Store,
            TrafficClass::Output,
            out,
            bytes,
            model.dma_cycles(bytes),
            None,
        );
        b.finish()
    }

    #[test]
    fn legal_schedule_passes() {
        let (dfg, model, _) = tiny_dfg();
        let sched = legal_schedule(&dfg, &model);
        validate_schedule(&dfg, &sched).unwrap();
    }

    #[test]
    fn missing_op_detected() {
        let (dfg, model, _) = tiny_dfg();
        let mut b = ScheduleBuilder::new(1);
        b.record_compute(dfg.ops()[0].id(), 0, 0, 10);
        let err = validate_schedule(&dfg, &b.finish()).unwrap_err();
        assert!(matches!(err, ValidationError::OpCount { times: 0, .. }), "{err}");
        let _ = model;
    }

    #[test]
    fn dependency_violation_detected() {
        let (dfg, _, _) = tiny_dfg();
        let mut b = ScheduleBuilder::new(2);
        // Schedule dependent op at time 0 on core 1 while the pred
        // runs 0..10 on core 0.
        b.record_compute(dfg.ops()[0].id(), 0, 0, 10);
        b.record_compute(dfg.ops()[1].id(), 1, 0, 10);
        let err = validate_schedule(&dfg, &b.finish()).unwrap_err();
        assert!(matches!(err, ValidationError::DependencyViolated { .. }), "{err}");
    }

    #[test]
    fn duplicate_op_detected() {
        let (dfg, _, _) = tiny_dfg();
        let mut b = ScheduleBuilder::new(1);
        b.record_compute(dfg.ops()[0].id(), 0, 0, 10);
        b.record_compute(dfg.ops()[0].id(), 0, 0, 10);
        b.record_compute(dfg.ops()[1].id(), 0, 0, 10);
        let err = validate_schedule(&dfg, &b.finish()).unwrap_err();
        assert!(matches!(err, ValidationError::OpCount { times: 2, .. }), "{err}");
    }

    #[test]
    fn missing_output_store_detected() {
        let (dfg, _, _) = tiny_dfg();
        let mut b = ScheduleBuilder::new(1);
        b.record_compute(dfg.ops()[0].id(), 0, 0, 10);
        b.record_compute(dfg.ops()[1].id(), 0, 10, 10);
        let err = validate_schedule(&dfg, &b.finish()).unwrap_err();
        assert!(matches!(err, ValidationError::MissingOutput { .. }), "{err}");
    }

    #[test]
    fn load_after_use_detected() {
        let (dfg, model, _) = tiny_dfg();
        let mut b = ScheduleBuilder::new(1);
        // Compute first, then its load — illegal.
        b.record_compute(dfg.ops()[0].id(), 0, 0, 10);
        b.record_compute(dfg.ops()[1].id(), 0, 10, 10);
        let out = TileId::Output { k: 0, s: 0 };
        b.record_mem_op(
            MemOpKind::Store,
            TrafficClass::Output,
            out,
            dfg.tile_bytes(out),
            model.dma_cycles(dfg.tile_bytes(out)),
            None,
        );
        b.record_mem_op(
            MemOpKind::Load,
            TrafficClass::Input,
            dfg.ops()[0].input(),
            8,
            10,
            Some(dfg.ops()[0].id()),
        );
        let err = validate_schedule(&dfg, &b.finish()).unwrap_err();
        assert!(matches!(err, ValidationError::LoadAfterUse { .. }), "{err}");
    }
}
