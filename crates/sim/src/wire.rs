//! A minimal deterministic binary codec ("wire format") for schedule
//! records.
//!
//! The workspace's vendored `serde` is a no-op stand-in, so anything
//! that must cross a process boundary — the `flexer-store` on-disk
//! schedule cache — carries its own explicit encoding. The format is
//! deliberately boring: little-endian fixed-width integers, `f64`s as
//! their IEEE-754 bit patterns (bit-exact round trips; scores must
//! compare identically after a reload), length-prefixed byte strings,
//! and `u8` tags for enums. No varints, no implicit defaults: every
//! field is written and read unconditionally, so the encoded bytes of
//! a value are a pure function of the value.
//!
//! Compatibility is handled *above* this layer: `flexer-store` stamps
//! a format version into both its entry header and its content hash,
//! so any change to these encoders must be accompanied by a store
//! version bump (the store's golden fingerprint test enforces that).
//!
//! # Examples
//!
//! ```
//! use flexer_sim::wire::{WireReader, WireWriter};
//!
//! let mut w = WireWriter::new();
//! w.u64(42);
//! w.str("tile");
//! let bytes = w.into_bytes();
//! let mut r = WireReader::new(&bytes);
//! assert_eq!(r.u64().unwrap(), 42);
//! assert_eq!(r.str().unwrap(), "tile");
//! r.finish().unwrap();
//! ```

use crate::schedule::{MemOp, MemOpKind, Schedule, ScheduledOp};
use crate::traffic::TrafficClass;
use flexer_tiling::{OpId, TileId};
use std::fmt;

/// Decode failure: the bytes do not describe a value of the expected
/// shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the expected value was complete.
    UnexpectedEof {
        /// Byte offset the read started at.
        at: usize,
        /// What was being read.
        expected: &'static str,
    },
    /// A tag or field held a value outside its domain.
    Invalid {
        /// What was being decoded.
        what: &'static str,
        /// The offending raw value.
        value: u64,
    },
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8 {
        /// Byte offset of the string payload.
        at: usize,
    },
    /// Decoding finished with input bytes left over.
    TrailingBytes {
        /// Number of unread bytes.
        remaining: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { at, expected } => {
                write!(f, "unexpected end of input at byte {at} reading {expected}")
            }
            WireError::Invalid { what, value } => {
                write!(f, "invalid {what}: raw value {value}")
            }
            WireError::BadUtf8 { at } => write!(f, "string at byte {at} is not valid UTF-8"),
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after the decoded value")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only encoder over a growable byte buffer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `bool` as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes a `u32` little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (bit-exact round
    /// trip, NaN payloads included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }
}

/// Sequential decoder over a byte slice.
#[derive(Debug)]
pub struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader positioned at the start of `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize, expected: &'static str) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(WireError::UnexpectedEof {
                at: self.pos,
                expected,
            })?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one raw byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a `bool` (rejecting anything but 0/1).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::Invalid {
                what: "bool",
                value: u64::from(other),
            }),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(b.try_into().expect("took 4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(b.try_into().expect("took 8 bytes")))
    }

    /// Reads a `usize` (a `u64` that must fit the platform).
    pub fn usize(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| WireError::Invalid {
            what: "usize",
            value: v,
        })
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.usize()?;
        let at = self.pos;
        let bytes = self.take(len, "string payload")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8 { at })
    }

    /// Asserts every input byte was consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }
}

/// Encodes an [`OpId`].
pub fn encode_op_id(w: &mut WireWriter, op: OpId) {
    w.u32(u32::try_from(op.index()).expect("op ids are u32-backed"));
}

/// Decodes an [`OpId`].
///
/// # Errors
///
/// [`WireError`] on malformed input.
pub fn decode_op_id(r: &mut WireReader<'_>) -> Result<OpId, WireError> {
    Ok(OpId::new(r.u32()?))
}

/// Encodes a [`TileId`].
pub fn encode_tile_id(w: &mut WireWriter, tile: TileId) {
    match tile {
        TileId::Input { c, s } => {
            w.u8(0);
            w.u32(c);
            w.u32(s);
        }
        TileId::Weight { k, c } => {
            w.u8(1);
            w.u32(k);
            w.u32(c);
        }
        TileId::Output { k, s } => {
            w.u8(2);
            w.u32(k);
            w.u32(s);
        }
    }
}

/// Decodes a [`TileId`].
///
/// # Errors
///
/// [`WireError`] on malformed input.
pub fn decode_tile_id(r: &mut WireReader<'_>) -> Result<TileId, WireError> {
    let tag = r.u8()?;
    let (a, b) = (r.u32()?, r.u32()?);
    match tag {
        0 => Ok(TileId::Input { c: a, s: b }),
        1 => Ok(TileId::Weight { k: a, c: b }),
        2 => Ok(TileId::Output { k: a, s: b }),
        other => Err(WireError::Invalid {
            what: "TileId tag",
            value: u64::from(other),
        }),
    }
}

/// Encodes a [`TrafficClass`].
pub fn encode_traffic_class(w: &mut WireWriter, class: TrafficClass) {
    let tag = match class {
        TrafficClass::Input => 0,
        TrafficClass::Weight => 1,
        TrafficClass::Psum => 2,
        TrafficClass::Output => 3,
    };
    w.u8(tag);
}

/// Decodes a [`TrafficClass`].
///
/// # Errors
///
/// [`WireError`] on malformed input.
pub fn decode_traffic_class(r: &mut WireReader<'_>) -> Result<TrafficClass, WireError> {
    match r.u8()? {
        0 => Ok(TrafficClass::Input),
        1 => Ok(TrafficClass::Weight),
        2 => Ok(TrafficClass::Psum),
        3 => Ok(TrafficClass::Output),
        other => Err(WireError::Invalid {
            what: "TrafficClass tag",
            value: u64::from(other),
        }),
    }
}

/// Encodes a [`MemOpKind`].
pub fn encode_mem_op_kind(w: &mut WireWriter, kind: MemOpKind) {
    let tag = match kind {
        MemOpKind::Load => 0,
        MemOpKind::Spill => 1,
        MemOpKind::Store => 2,
    };
    w.u8(tag);
}

/// Decodes a [`MemOpKind`].
///
/// # Errors
///
/// [`WireError`] on malformed input.
pub fn decode_mem_op_kind(r: &mut WireReader<'_>) -> Result<MemOpKind, WireError> {
    match r.u8()? {
        0 => Ok(MemOpKind::Load),
        1 => Ok(MemOpKind::Spill),
        2 => Ok(MemOpKind::Store),
        other => Err(WireError::Invalid {
            what: "MemOpKind tag",
            value: u64::from(other),
        }),
    }
}

/// Encodes a [`MemOp`].
pub fn encode_mem_op(w: &mut WireWriter, op: &MemOp) {
    encode_mem_op_kind(w, op.kind);
    encode_traffic_class(w, op.class);
    encode_tile_id(w, op.tile);
    w.u64(op.bytes);
    w.u64(op.start);
    w.u64(op.end);
    match op.for_op {
        None => w.u8(0),
        Some(id) => {
            w.u8(1);
            encode_op_id(w, id);
        }
    }
    w.bool(op.resident);
}

/// Decodes a [`MemOp`].
///
/// # Errors
///
/// [`WireError`] on malformed input.
pub fn decode_mem_op(r: &mut WireReader<'_>) -> Result<MemOp, WireError> {
    let kind = decode_mem_op_kind(r)?;
    let class = decode_traffic_class(r)?;
    let tile = decode_tile_id(r)?;
    let bytes = r.u64()?;
    let start = r.u64()?;
    let end = r.u64()?;
    let for_op = match r.u8()? {
        0 => None,
        1 => Some(decode_op_id(r)?),
        other => {
            return Err(WireError::Invalid {
                what: "Option tag",
                value: u64::from(other),
            })
        }
    };
    let resident = r.bool()?;
    Ok(MemOp {
        kind,
        class,
        tile,
        bytes,
        start,
        end,
        for_op,
        resident,
    })
}

/// Encodes a [`ScheduledOp`].
pub fn encode_scheduled_op(w: &mut WireWriter, op: &ScheduledOp) {
    encode_op_id(w, op.op);
    w.u32(op.core);
    w.u64(op.start);
    w.u64(op.end);
}

/// Decodes a [`ScheduledOp`].
///
/// # Errors
///
/// [`WireError`] on malformed input.
pub fn decode_scheduled_op(r: &mut WireReader<'_>) -> Result<ScheduledOp, WireError> {
    Ok(ScheduledOp {
        op: decode_op_id(r)?,
        core: r.u32()?,
        start: r.u64()?,
        end: r.u64()?,
    })
}

/// Encodes a full [`Schedule`].
pub fn encode_schedule(w: &mut WireWriter, s: &Schedule) {
    s.encode_wire(w);
}

/// Decodes a full [`Schedule`].
///
/// # Errors
///
/// [`WireError`] on malformed input.
pub fn decode_schedule(r: &mut WireReader<'_>) -> Result<Schedule, WireError> {
    Schedule::decode_wire(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut w = WireWriter::new();
        w.u8(7);
        w.bool(true);
        w.bool(false);
        w.u32(u32::MAX);
        w.u64(u64::MAX);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.str("héllo");
        w.str("");
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), u32::MAX);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.str().unwrap(), "");
        r.finish().unwrap();
    }

    #[test]
    fn eof_and_trailing_are_typed() {
        let mut r = WireReader::new(&[1, 2]);
        assert!(matches!(r.u64(), Err(WireError::UnexpectedEof { .. })));
        let mut r = WireReader::new(&[1, 2]);
        r.u8().unwrap();
        assert_eq!(r.finish(), Err(WireError::TrailingBytes { remaining: 1 }));
        let mut r = WireReader::new(&[3]);
        assert!(matches!(
            r.bool(),
            Err(WireError::Invalid { what: "bool", .. })
        ));
    }

    #[test]
    fn huge_length_prefix_is_an_eof_not_a_panic() {
        let mut w = WireWriter::new();
        w.u64(u64::MAX); // absurd string length
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(r.str().is_err());
    }

    #[test]
    fn tile_and_op_ids_round_trip() {
        for tile in [
            TileId::Input { c: 3, s: 9 },
            TileId::Weight { k: 1, c: 2 },
            TileId::Output { k: 0, s: 7 },
        ] {
            let mut w = WireWriter::new();
            encode_tile_id(&mut w, tile);
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            assert_eq!(decode_tile_id(&mut r).unwrap(), tile);
            r.finish().unwrap();
        }
        let mut w = WireWriter::new();
        encode_op_id(&mut w, OpId::new(41));
        let bytes = w.into_bytes();
        assert_eq!(
            decode_op_id(&mut WireReader::new(&bytes)).unwrap(),
            OpId::new(41)
        );
    }

    #[test]
    fn bad_tags_are_rejected() {
        let mut r = WireReader::new(&[9, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert!(matches!(
            decode_tile_id(&mut r),
            Err(WireError::Invalid {
                what: "TileId tag",
                ..
            })
        ));
        let mut r = WireReader::new(&[9]);
        assert!(decode_traffic_class(&mut r).is_err());
        let mut r = WireReader::new(&[9]);
        assert!(decode_mem_op_kind(&mut r).is_err());
    }

    #[test]
    fn mem_and_compute_ops_round_trip() {
        let op = MemOp {
            kind: MemOpKind::Spill,
            class: TrafficClass::Psum,
            tile: TileId::Output { k: 2, s: 5 },
            bytes: 4096,
            start: 10,
            end: 138,
            for_op: Some(OpId::new(6)),
            resident: false,
        };
        let mut w = WireWriter::new();
        encode_mem_op(&mut w, &op);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(decode_mem_op(&mut r).unwrap(), op);
        r.finish().unwrap();

        let sop = ScheduledOp {
            op: OpId::new(3),
            core: 1,
            start: 0,
            end: 99,
        };
        let mut w = WireWriter::new();
        encode_scheduled_op(&mut w, &sop);
        let bytes = w.into_bytes();
        assert_eq!(
            decode_scheduled_op(&mut WireReader::new(&bytes)).unwrap(),
            sop
        );
    }
}
