//! Admissible lower bounds on the cost of scheduling one
//! (layer, tiling) pair.
//!
//! For every (layer, tiling) pair the solver computes — *before*
//! running any scheduler — a [`ScheduleBound`] that no legal schedule
//! can beat:
//!
//! * **latency** ≥ max(compute envelope packed on `n` cores, serial
//!   DMA time of the compulsory traffic). Compute can at best be
//!   perfectly load-balanced and the single shared DMA channel must
//!   move every compulsory tile at least once.
//! * **transfer** ≥ compulsory bytes: each distinct input and weight
//!   tile is loaded at least once and each output tile stored once.
//!
//! Both terms are dataflow-independent, so one bound covers all six
//! dataflows of a tiling. Because every monotone [`Metric`] is
//! non-decreasing in (latency, transfer),
//! `metric.score(bound.latency, bound.transfer_bytes)` never exceeds
//! the true score of any schedule of that work item — the bound is
//! *admissible*, and pruning on it is exact (see DESIGN.md §10).

use crate::metric::Metric;
use flexer_arch::{ArchConfig, PerfModel};
use flexer_model::ConvLayer;
use flexer_tiling::{compute_envelope, CompulsoryTiles, Residency, TilingFactors};

/// Admissible lower bounds on the cost of any schedule of one
/// (layer, tiling) pair, valid for every dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleBound {
    /// Lower bound on the schedule makespan, in cycles.
    pub latency: u64,
    /// Lower bound on the transferred bytes.
    pub transfer_bytes: u64,
}

impl ScheduleBound {
    /// Scores the bound under `metric`; by admissibility this never
    /// exceeds the score of any real schedule of the work item.
    #[must_use]
    pub fn score(&self, metric: Metric) -> f64 {
        metric.score(self.latency, self.transfer_bytes)
    }
}

/// Computes the admissible [`ScheduleBound`] of `layer` tiled by
/// `factors` on `arch` under `perf`.
#[must_use]
pub fn lower_bound(
    layer: &ConvLayer,
    arch: &ArchConfig,
    perf: &dyn PerfModel,
    factors: &TilingFactors,
) -> ScheduleBound {
    lower_bound_resident(layer, arch, perf, factors, Residency::default())
}

/// [`lower_bound`] under a cross-layer residency assignment.
///
/// Resident tensors never touch DRAM, so their compulsory bytes leave
/// the transfer floor. The latency floor is *unchanged*: a resident
/// gather or scatter occupies the single DMA engine for the same span
/// as its DRAM equivalent, so every compulsory tile still serializes
/// through the channel at least once.
#[must_use]
pub fn lower_bound_resident(
    layer: &ConvLayer,
    arch: &ArchConfig,
    perf: &dyn PerfModel,
    factors: &TilingFactors,
    residency: Residency,
) -> ScheduleBound {
    let env = compute_envelope(layer, factors, perf);
    let compute = perf.packed_compute_cycles(
        env.total_cycles,
        env.max_op_cycles,
        env.chain_cycles,
        arch.cores(),
    );
    let tiles = CompulsoryTiles::compute(layer, factors, arch.element_size().bytes());
    let sizes: Vec<u64> = tiles.transfer_sizes().collect();
    let dma = perf.serial_dma_cycles(&sizes);
    ScheduleBound {
        latency: compute.max(dma),
        transfer_bytes: tiles.dram_bytes(residency),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_arch::{ArchPreset, SystolicModel};
    use flexer_tiling::TileKind;

    #[test]
    fn bound_combines_compute_and_dma_terms() {
        let layer = ConvLayer::new("b", 32, 14, 14, 48).unwrap();
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let perf = SystolicModel::new(&arch);
        let factors = TilingFactors::normalized(&layer, 2, 2, 2, 2);
        let b = lower_bound(&layer, &arch, &perf, &factors);
        assert!(b.latency > 0);
        let tiles = CompulsoryTiles::compute(&layer, &factors, arch.element_size().bytes());
        assert_eq!(b.transfer_bytes, tiles.total_bytes());
        assert!(b.transfer_bytes >= tiles.kind_bytes(TileKind::Output));
    }

    #[test]
    fn bound_score_uses_the_metric() {
        let b = ScheduleBound {
            latency: 10,
            transfer_bytes: 20,
        };
        assert_eq!(b.score(Metric::LatencyTimesTransfer), 200.0);
        assert_eq!(b.score(Metric::Latency), 10.0);
        assert_eq!(b.score(Metric::Transfer), 20.0);
    }
}
