//! Analytical scheduling solver: millisecond-scale candidate ranking
//! with provable quality gaps, no SPM simulation required.
//!
//! The exact search in `flexer-sched` evaluates every (tiling,
//! dataflow) candidate by actually running a scheduler — building the
//! DFG, simulating the shared buffer, committing operation sets. That
//! is the ground truth, but it is also why a cold search spends
//! hundreds of full evaluations before its branch-and-bound cutoff
//! becomes useful. This crate provides the cheap half of the
//! CoSA/KAPLA recipe (see PAPERS.md): score every candidate with
//!
//! * the existing admissible [`ScheduleBound`] (a floor no schedule
//!   can beat), and
//! * a closed-form contention/occupancy [`Estimate`] (a realistic
//!   prediction of what a schedule will actually cost),
//!
//! then rank candidates by the estimate ([`rank_candidates`]) so a
//! caller can fully evaluate only the top-k. The best evaluated
//! schedule comes with a provable optimality gap: its true score
//! divided by the minimum lower-bound score over *all* candidates
//! ([`gap_ppm`]).
//!
//! Everything here is arithmetic over the layer's tile geometry —
//! no DFG, no scheduler, no simulation — so scoring thousands of
//! candidates costs microseconds, not seconds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bound;
mod metric;
mod model;

pub use bound::{lower_bound, lower_bound_resident, ScheduleBound};
pub use metric::Metric;
pub use model::{
    estimate, estimate_resident, gap_ppm, rank_candidates, rank_candidates_resident, Candidate,
    Estimate,
};
