//! Schedule-ranking metrics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The objective minimized when Algorithm 1 compares the schedules of
/// different tilings and dataflows.
///
/// The paper's default is `latency x transferred data` (Algorithm 1
/// line 5). §5 notes the metric "can easily be adjusted to particular
/// goals" and evaluates a transfer-weighted variant (Figure 9 (b/c));
/// the other variants exist for those experiments.
///
/// # Examples
///
/// ```
/// use flexer_solve::Metric;
///
/// let m = Metric::LatencyTimesTransfer;
/// assert_eq!(m.score(10, 20), 200.0);
/// assert!(Metric::Transfer.score(10, 20) < Metric::Transfer.score(10, 30));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum Metric {
    /// `latency x transfer` — the paper's default.
    #[default]
    LatencyTimesTransfer,
    /// Latency only.
    Latency,
    /// Transferred bytes only (Figure 9 (c)'s "minimal data transfer"
    /// policy).
    Transfer,
    /// `latency x transfer^weight` with `weight > 1` — reductions in
    /// data transfers weighted higher than performance (Figure 9 (b)).
    TransferWeighted {
        /// Exponent applied to the transferred bytes.
        weight: f64,
    },
}

impl Metric {
    /// A hashable fingerprint: the variant discriminant plus the
    /// weight's bit pattern (the `f64` makes the type itself neither
    /// `Eq` nor `Hash`). Used by the search memo key and the schedule
    /// store's content address.
    #[must_use]
    pub fn fingerprint(&self) -> (u8, u64) {
        match *self {
            Metric::LatencyTimesTransfer => (0, 0),
            Metric::Latency => (1, 0),
            Metric::Transfer => (2, 0),
            Metric::TransferWeighted { weight } => (3, weight.to_bits()),
        }
    }

    /// Scores a schedule; lower is better.
    #[must_use]
    pub fn score(&self, latency: u64, transfer_bytes: u64) -> f64 {
        let l = latency as f64;
        let t = transfer_bytes as f64;
        match *self {
            Metric::LatencyTimesTransfer => l * t,
            Metric::Latency => l,
            Metric::Transfer => t,
            Metric::TransferWeighted { weight } => l * t.powf(weight),
        }
    }

    /// Whether the score is non-decreasing in both latency and
    /// transferred bytes. Admissible-bound pruning is only sound for
    /// monotone metrics: `score(lb_latency, lb_transfer)` must never
    /// exceed the true score. Every built-in metric is monotone except
    /// [`Metric::TransferWeighted`] with a negative weight.
    #[must_use]
    pub fn is_monotone(&self) -> bool {
        match *self {
            Metric::LatencyTimesTransfer | Metric::Latency | Metric::Transfer => true,
            Metric::TransferWeighted { weight } => weight >= 0.0,
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Metric::LatencyTimesTransfer => write!(f, "latency x transfer"),
            Metric::Latency => write!(f, "latency"),
            Metric::Transfer => write!(f, "transfer"),
            Metric::TransferWeighted { weight } => {
                write!(f, "latency x transfer^{weight}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_metric() {
        assert_eq!(Metric::default(), Metric::LatencyTimesTransfer);
    }

    #[test]
    fn scores_order_schedules_correctly() {
        // Schedule A: fast but heavy traffic. B: slow but light.
        let (la, ta) = (100u64, 1000u64);
        let (lb, tb) = (200u64, 400u64);
        assert!(
            Metric::LatencyTimesTransfer.score(lb, tb) < Metric::LatencyTimesTransfer.score(la, ta)
        );
        assert!(Metric::Latency.score(la, ta) < Metric::Latency.score(lb, tb));
        assert!(Metric::Transfer.score(lb, tb) < Metric::Transfer.score(la, ta));
    }

    #[test]
    fn transfer_weighting_shifts_the_tradeoff() {
        // With weight 1 equals the default; higher weights favour the
        // low-traffic schedule more strongly.
        let m1 = Metric::TransferWeighted { weight: 1.0 };
        assert_eq!(m1.score(7, 11), Metric::LatencyTimesTransfer.score(7, 11));
        let m3 = Metric::TransferWeighted { weight: 3.0 };
        // A: (100, 1000), B: (500, 500): default prefers A...
        assert!(
            Metric::LatencyTimesTransfer.score(100, 1000)
                < Metric::LatencyTimesTransfer.score(500, 500)
        );
        // ...the weighted metric prefers B.
        assert!(m3.score(500, 500) < m3.score(100, 1000));
    }

    #[test]
    fn monotonicity_classification() {
        assert!(Metric::LatencyTimesTransfer.is_monotone());
        assert!(Metric::Latency.is_monotone());
        assert!(Metric::Transfer.is_monotone());
        assert!(Metric::TransferWeighted { weight: 2.0 }.is_monotone());
        assert!(Metric::TransferWeighted { weight: 0.0 }.is_monotone());
        assert!(!Metric::TransferWeighted { weight: -1.0 }.is_monotone());
    }

    #[test]
    fn fingerprints_distinguish_variants() {
        let all = [
            Metric::LatencyTimesTransfer,
            Metric::Latency,
            Metric::Transfer,
            Metric::TransferWeighted { weight: 2.0 },
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.fingerprint(), b.fingerprint());
            }
        }
        assert_ne!(
            Metric::TransferWeighted { weight: 2.0 }.fingerprint(),
            Metric::TransferWeighted { weight: 3.0 }.fingerprint()
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(Metric::default().to_string(), "latency x transfer");
        assert_eq!(
            Metric::TransferWeighted { weight: 2.0 }.to_string(),
            "latency x transfer^2"
        );
    }
}
