//! The closed-form contention/occupancy model and candidate ranking.
//!
//! Where [`crate::lower_bound`] answers "what can no schedule beat?",
//! [`estimate`] answers "what will a schedule of this candidate
//! plausibly cost?" — still in closed form, still without building a
//! DFG or simulating the shared buffer. The two differences:
//!
//! 1. **Reuse-aware traffic.** The bound charges each distinct tile
//!    once (compulsory traffic). The estimate walks the candidate's
//!    loop order: a tile class stays resident across the innermost
//!    loops that do not index it, but every enclosing non-indexing
//!    loop sweeps the whole class through the buffer again. Partial
//!    sums additionally bounce both ways (store + reload per
//!    revisit), giving outputs a `2r − 1` pass count for reload
//!    factor `r`. This is the classic stationarity analysis — which
//!    is exactly why the estimate, unlike the bound, depends on the
//!    dataflow.
//! 2. **Contention latency.** The bound takes
//!    `max(compute, dma)` — perfect overlap. Real schedules on `n`
//!    cores contend for the single DMA channel and for buffer
//!    occupancy, so a slice of the shorter resource's busy time leaks
//!    onto the critical path: the estimate charges
//!    `max(C, D) + min(C, D) / (n + 1)`.
//!
//! Both refinements only ever *add* cost, so for every candidate
//! `estimate ≥ bound` holds componentwise — the estimate ranks, the
//! bound proves.

use crate::bound::{lower_bound_resident, ScheduleBound};
use crate::metric::Metric;
use flexer_arch::{ArchConfig, PerfModel};
use flexer_model::ConvLayer;
use flexer_tiling::{CompulsoryTiles, Dataflow, Residency, TileKind, TilingFactors};

/// Predicted cost of scheduling one (tiling, dataflow) candidate under
/// the closed-form contention/occupancy model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Estimate {
    /// Predicted schedule makespan, in cycles. Never below the
    /// admissible bound's latency.
    pub latency: u64,
    /// Predicted DRAM traffic, in bytes. Never below the compulsory
    /// bytes.
    pub transfer_bytes: u64,
}

/// A loop dimension of the tiled iteration space, re-derived from the
/// public [`Dataflow`] variants (the tiling crate keeps its own loop
/// enum private).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dim {
    K,
    C,
    S,
}

/// Loop dimensions of `df`, outermost-first.
const fn loop_order(df: Dataflow) -> [Dim; 3] {
    match df {
        Dataflow::Kcs => [Dim::K, Dim::C, Dim::S],
        Dataflow::Ksc => [Dim::K, Dim::S, Dim::C],
        Dataflow::Cks => [Dim::C, Dim::K, Dim::S],
        Dataflow::Csk => [Dim::C, Dim::S, Dim::K],
        Dataflow::Skc => [Dim::S, Dim::K, Dim::C],
        Dataflow::Sck => [Dim::S, Dim::C, Dim::K],
    }
}

/// Whether tiles of `kind` are indexed by loop dimension `d`.
const fn indexes(kind: TileKind, d: Dim) -> bool {
    match kind {
        TileKind::Input => matches!(d, Dim::C | Dim::S),
        TileKind::Weight => matches!(d, Dim::K | Dim::C),
        TileKind::Output => matches!(d, Dim::K | Dim::S),
    }
}

fn trip_count(factors: &TilingFactors, d: Dim) -> u64 {
    u64::from(match d {
        Dim::K => factors.k(),
        Dim::C => factors.c(),
        Dim::S => factors.spatial(),
    })
}

/// How many times the loop order sweeps every distinct tile of `kind`
/// through the buffer.
///
/// The innermost contiguous run of loops that do not index the class
/// reuses a resident tile for free; every non-indexing loop outside
/// that run revisits the full class once per iteration. `1` means
/// compulsory traffic only (the class is stationary under this order).
fn reload_factor(factors: &TilingFactors, order: [Dim; 3], kind: TileKind) -> u64 {
    let mut cut = order.len();
    while cut > 0 && !indexes(kind, order[cut - 1]) {
        cut -= 1;
    }
    order[..cut]
        .iter()
        .filter(|&&d| !indexes(kind, d))
        .map(|&d| trip_count(factors, d))
        .product()
}

/// [`reload_factor`] for a grouped layer, whose diagonal-only op set
/// collapses the K and C loops into one channel-tile loop `T`.
///
/// The effective loop order is `[T, S]` (or `[S, T]` when the spatial
/// loop comes first). Inputs and outputs are indexed by both effective
/// dims, so they are always stationary; weights are not indexed by `S`,
/// so an outer spatial loop sweeps the whole weight class once per
/// iteration.
fn grouped_reload_factor(factors: &TilingFactors, order: [Dim; 3], kind: TileKind) -> u64 {
    match kind {
        TileKind::Input | TileKind::Output => 1,
        TileKind::Weight => {
            if order[0] == Dim::S {
                u64::from(factors.spatial())
            } else {
                1
            }
        }
    }
}

/// Scores one (tiling, dataflow) candidate with the closed-form
/// contention/occupancy model. Pure arithmetic over the tile
/// geometry — no DFG, no SPM simulation.
#[must_use]
pub fn estimate(
    layer: &ConvLayer,
    arch: &ArchConfig,
    perf: &dyn PerfModel,
    factors: &TilingFactors,
    dataflow: Dataflow,
) -> Estimate {
    estimate_resident(layer, arch, perf, factors, dataflow, Residency::default())
}

/// [`estimate`] under a cross-layer residency assignment.
///
/// Resident tensors change the predicted *DRAM* traffic only: a
/// resident input class sweeps the buffer through on-chip gathers
/// (zero DRAM bytes, full DMA occupancy), and a resident output drops
/// the final store from its `2r − 1` passes (psum spill/reload
/// round-trips stay DRAM-bound), leaving `2r − 2` DRAM passes. The
/// DMA-occupancy latency term keeps every pass — resident transfers
/// hold the channel just as long.
#[must_use]
pub fn estimate_resident(
    layer: &ConvLayer,
    arch: &ArchConfig,
    perf: &dyn PerfModel,
    factors: &TilingFactors,
    dataflow: Dataflow,
    residency: Residency,
) -> Estimate {
    let env = flexer_tiling::compute_envelope(layer, factors, perf);
    let compute = perf.packed_compute_cycles(
        env.total_cycles,
        env.max_op_cycles,
        env.chain_cycles,
        arch.cores(),
    );
    let tiles = CompulsoryTiles::compute(layer, factors, arch.element_size().bytes());
    let order = loop_order(dataflow);
    let grouped = layer.kind().is_grouped();
    let mut traffic = 0u64;
    let mut dma = 0u64;
    for kind in [TileKind::Input, TileKind::Weight, TileKind::Output] {
        let reload = if grouped {
            grouped_reload_factor(factors, order, kind)
        } else {
            reload_factor(factors, order, kind)
        };
        // Partial sums revisited r times are stored and reloaded on
        // each revisit but only stored on the final one: 2r − 1 passes.
        let passes = if kind == TileKind::Output {
            reload.saturating_mul(2).saturating_sub(1)
        } else {
            reload
        };
        let dram_passes = match kind {
            TileKind::Input if residency.input_resident => 0,
            TileKind::Output if residency.output_resident => passes.saturating_sub(1),
            _ => passes,
        };
        traffic = traffic.saturating_add(tiles.kind_bytes(kind).saturating_mul(dram_passes));
        let sizes: Vec<u64> = tiles.kind_transfer_sizes(kind).collect();
        dma = dma.saturating_add(perf.serial_dma_cycles(&sizes).saturating_mul(passes));
    }
    // Overlap with contention: the longer resource is the critical
    // path; one (n+1)-th of the shorter one leaks onto it through DMA
    // channel and buffer-occupancy conflicts.
    let (short, long) = (compute.min(dma), compute.max(dma));
    let latency = long.saturating_add(short / (u64::from(arch.cores()) + 1));
    Estimate {
        latency,
        transfer_bytes: traffic,
    }
}

/// One scored (tiling, dataflow) candidate: the admissible floor and
/// the model's prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The tiling of the candidate.
    pub factors: TilingFactors,
    /// The loop order of the candidate.
    pub dataflow: Dataflow,
    /// Admissible lower bound (dataflow-independent).
    pub bound: ScheduleBound,
    /// Closed-form cost prediction (dataflow-dependent).
    pub est: Estimate,
}

impl Candidate {
    /// The provable floor of this candidate under `metric`.
    #[must_use]
    pub fn bound_score(&self, metric: Metric) -> f64 {
        self.bound.score(metric)
    }

    /// The predicted score of this candidate under `metric` — the
    /// ranking key.
    #[must_use]
    pub fn estimated_score(&self, metric: Metric) -> f64 {
        metric.score(self.est.latency, self.est.transfer_bytes)
    }
}

/// Scores every `tilings` × `dataflows` candidate and returns them
/// sorted ascending by estimated score (best predicted first), with
/// ties broken by enumeration order (tiling-major, then dataflow) so
/// the ranking is deterministic.
#[must_use]
pub fn rank_candidates(
    layer: &ConvLayer,
    arch: &ArchConfig,
    perf: &dyn PerfModel,
    tilings: &[TilingFactors],
    dataflows: &[Dataflow],
    metric: Metric,
) -> Vec<Candidate> {
    rank_candidates_resident(
        layer,
        arch,
        perf,
        tilings,
        dataflows,
        metric,
        Residency::default(),
    )
}

/// [`rank_candidates`] under a cross-layer residency assignment: both
/// the admissible floor and the prediction use the residency-aware
/// byte math, so the ranking stays consistent with the search it seeds.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn rank_candidates_resident(
    layer: &ConvLayer,
    arch: &ArchConfig,
    perf: &dyn PerfModel,
    tilings: &[TilingFactors],
    dataflows: &[Dataflow],
    metric: Metric,
    residency: Residency,
) -> Vec<Candidate> {
    let mut out = Vec::with_capacity(tilings.len() * dataflows.len());
    for factors in tilings {
        let bound = lower_bound_resident(layer, arch, perf, factors, residency);
        for &dataflow in dataflows {
            let est = estimate_resident(layer, arch, perf, factors, dataflow, residency);
            out.push(Candidate {
                factors: *factors,
                dataflow,
                bound,
                est,
            });
        }
    }
    // Stable sort: equal estimated scores keep enumeration order.
    out.sort_by(|a, b| {
        a.estimated_score(metric)
            .total_cmp(&b.estimated_score(metric))
    });
    out
}

/// The optimality gap of a score against a proven floor, in parts per
/// million: `round((score / bound − 1) · 1e6)`.
///
/// `0` when the score meets the bound (a certificate of optimality)
/// or when either input is non-positive or non-finite — a gap is only
/// meaningful over a real floor.
#[must_use]
pub fn gap_ppm(score: f64, bound: f64) -> u64 {
    if !score.is_finite() || !bound.is_finite() || bound <= 0.0 || score <= bound {
        return 0;
    }
    let ppm = (score / bound - 1.0) * 1e6;
    if ppm >= u64::MAX as f64 {
        u64::MAX
    } else {
        ppm.round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bound::lower_bound;
    use flexer_arch::{ArchPreset, SystolicModel};

    fn setup() -> (ConvLayer, ArchConfig, SystolicModel) {
        let layer = ConvLayer::new("m", 32, 14, 14, 48).unwrap();
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let perf = SystolicModel::new(&arch);
        (layer, arch, perf)
    }

    #[test]
    fn reload_factors_match_the_stationarity_analysis() {
        let (layer, _, _) = setup();
        let factors = TilingFactors::normalized(&layer, 3, 2, 2, 2);
        let (kt, ct, st) = (
            u64::from(factors.k()),
            u64::from(factors.c()),
            u64::from(factors.spatial()),
        );
        // KCS: inputs swept once per k, weights stationary, outputs
        // revisited once per c.
        let order = loop_order(Dataflow::Kcs);
        assert_eq!(reload_factor(&factors, order, TileKind::Input), kt);
        assert_eq!(reload_factor(&factors, order, TileKind::Weight), 1);
        assert_eq!(reload_factor(&factors, order, TileKind::Output), ct);
        // CSK: inputs stationary (innermost k does not index them).
        let order = loop_order(Dataflow::Csk);
        assert_eq!(reload_factor(&factors, order, TileKind::Input), 1);
        assert_eq!(reload_factor(&factors, order, TileKind::Weight), st);
        assert_eq!(reload_factor(&factors, order, TileKind::Output), ct);
        // SKC: outputs accumulate in place (innermost c).
        let order = loop_order(Dataflow::Skc);
        assert_eq!(reload_factor(&factors, order, TileKind::Output), 1);
    }

    #[test]
    fn estimate_never_beats_the_bound() {
        let (layer, arch, perf) = setup();
        for (k, c, h, w) in [(1, 1, 1, 1), (2, 2, 2, 2), (3, 2, 2, 1), (4, 1, 7, 2)] {
            let factors = TilingFactors::normalized(&layer, k, c, h, w);
            let bound = lower_bound(&layer, &arch, &perf, &factors);
            for df in Dataflow::all() {
                let est = estimate(&layer, &arch, &perf, &factors, df);
                assert!(est.latency >= bound.latency, "{factors} {df}");
                assert!(est.transfer_bytes >= bound.transfer_bytes, "{factors} {df}");
            }
        }
    }

    #[test]
    fn estimates_depend_on_the_dataflow() {
        let (layer, arch, perf) = setup();
        let factors = TilingFactors::normalized(&layer, 3, 2, 2, 2);
        let traffic: Vec<u64> = Dataflow::all()
            .iter()
            .map(|&df| estimate(&layer, &arch, &perf, &factors, df).transfer_bytes)
            .collect();
        assert!(
            traffic.windows(2).any(|w| w[0] != w[1]),
            "all six dataflows estimated identical traffic: {traffic:?}"
        );
    }

    #[test]
    fn untiled_layer_has_no_reloads() {
        let (layer, arch, perf) = setup();
        let factors = TilingFactors::normalized(&layer, 1, 1, 1, 1);
        let bound = lower_bound(&layer, &arch, &perf, &factors);
        for df in Dataflow::all() {
            let est = estimate(&layer, &arch, &perf, &factors, df);
            assert_eq!(est.transfer_bytes, bound.transfer_bytes, "{df}");
        }
    }

    #[test]
    fn ranking_is_sorted_and_complete() {
        let (layer, arch, perf) = setup();
        let tilings = [
            TilingFactors::normalized(&layer, 1, 1, 1, 1),
            TilingFactors::normalized(&layer, 2, 2, 2, 2),
            TilingFactors::normalized(&layer, 3, 2, 2, 1),
        ];
        let metric = Metric::LatencyTimesTransfer;
        let ranked = rank_candidates(&layer, &arch, &perf, &tilings, &Dataflow::all(), metric);
        assert_eq!(ranked.len(), tilings.len() * 6);
        for pair in ranked.windows(2) {
            assert!(pair[0].estimated_score(metric) <= pair[1].estimated_score(metric));
        }
        for c in &ranked {
            assert!(c.estimated_score(metric) >= c.bound_score(metric));
        }
    }

    #[test]
    fn grouped_estimates_do_not_charge_phantom_cross_channel_reloads() {
        // Regression: the dense stationarity analysis charges inputs a
        // reload per output-channel tile (`kt` under KCS), but a
        // grouped layer's diagonal op set touches each input tile from
        // exactly one channel tile. With a channel-outer order every
        // class is stationary, so the estimate's traffic must equal
        // the compulsory floor even when kt > 1.
        let layer = flexer_model::ConvLayerBuilder::new("g", 32, 14, 14, 32)
            .kernel(3, 3)
            .padding(1)
            .groups(8)
            .build()
            .unwrap();
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let perf = SystolicModel::new(&arch);
        let factors = TilingFactors::normalized(&layer, 4, 4, 2, 2);
        assert!(factors.k() > 1);
        let bound = lower_bound(&layer, &arch, &perf, &factors);
        for df in [Dataflow::Kcs, Dataflow::Ksc, Dataflow::Cks, Dataflow::Csk] {
            let est = estimate(&layer, &arch, &perf, &factors, df);
            assert_eq!(est.transfer_bytes, bound.transfer_bytes, "{df}");
        }
        // A spatial-outer order does resweep the weights.
        for df in [Dataflow::Skc, Dataflow::Sck] {
            let est = estimate(&layer, &arch, &perf, &factors, df);
            assert!(est.transfer_bytes > bound.transfer_bytes, "{df}");
            assert!(est.latency >= bound.latency, "{df}");
        }
    }

    #[test]
    fn new_kinds_and_hetero_arch_keep_estimate_above_bound() {
        let layers = [
            ConvLayer::matmul("mm", 64, 96, 48).unwrap(),
            ConvLayer::depthwise("dw", 32, 14, 14, 1, 1).unwrap(),
            flexer_model::ConvLayerBuilder::new("g", 32, 8, 8, 64)
                .groups(4)
                .build()
                .unwrap(),
        ];
        for arch in [ArchConfig::preset(ArchPreset::Arch1), ArchConfig::hetero1()] {
            let perf = SystolicModel::new(&arch);
            for layer in &layers {
                for (k, c, h, w) in [(1, 1, 1, 1), (2, 2, 2, 2), (4, 4, 2, 1)] {
                    let factors = TilingFactors::normalized(layer, k, c, h, w);
                    let bound = lower_bound(layer, &arch, &perf, &factors);
                    assert!(bound.latency > 0, "{} {}", layer.name(), factors);
                    assert!(bound.transfer_bytes > 0, "{} {}", layer.name(), factors);
                    for df in Dataflow::all() {
                        let est = estimate(layer, &arch, &perf, &factors, df);
                        assert!(
                            est.latency >= bound.latency,
                            "{} {factors} {df}",
                            layer.name()
                        );
                        assert!(
                            est.transfer_bytes >= bound.transfer_bytes,
                            "{} {factors} {df}",
                            layer.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn gap_ppm_definition() {
        assert_eq!(gap_ppm(100.0, 100.0), 0);
        assert_eq!(gap_ppm(101.0, 100.0), 10_000);
        assert_eq!(gap_ppm(2.0, 1.0), 1_000_000);
        assert_eq!(gap_ppm(50.0, 100.0), 0);
        assert_eq!(gap_ppm(f64::INFINITY, 100.0), 0);
        assert_eq!(gap_ppm(100.0, 0.0), 0);
    }
}
