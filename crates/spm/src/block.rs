//! Memory blocks of the scratchpad model.

use flexer_tiling::TileId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Residency metadata of an on-chip data tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileData {
    /// The tile held by the block.
    pub tile: TileId,
    /// How many not-yet-scheduled operations still reference the tile
    /// as an operand (the paper's `remain_uses`, Algorithm 2 line 15).
    pub remain_uses: u32,
    /// Whether the on-chip copy differs from DRAM (partial sums and
    /// unwritten outputs); evicting a dirty tile costs a write-back.
    pub dirty: bool,
    /// Whether the tile is an operand of the operation set currently
    /// being issued; pinned tiles cannot be spilled.
    pub pinned: bool,
}

/// Allocation state of a [`Block`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockState {
    /// The block holds no data.
    Free,
    /// The block holds a data tile.
    Allocated(TileData),
}

impl BlockState {
    /// The tile data if allocated.
    #[must_use]
    pub fn tile_data(&self) -> Option<&TileData> {
        match self {
            BlockState::Free => None,
            BlockState::Allocated(data) => Some(data),
        }
    }

    /// Whether the block is free.
    #[must_use]
    pub const fn is_free(&self) -> bool {
        matches!(self, BlockState::Free)
    }
}

/// One contiguous region of the scratchpad (paper Algorithm 2's
/// `Block` struct).
///
/// The scratchpad is modelled as an address-ordered list of blocks
/// that exactly covers `[0, capacity)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    start: u64,
    size: u64,
    state: BlockState,
}

impl Block {
    pub(crate) fn new(start: u64, size: u64, state: BlockState) -> Self {
        debug_assert!(size > 0, "blocks must be non-empty");
        Self { start, size, state }
    }

    /// First byte address of the block.
    #[must_use]
    pub const fn start(&self) -> u64 {
        self.start
    }

    /// Size of the block in bytes.
    #[must_use]
    pub const fn size(&self) -> u64 {
        self.size
    }

    /// One past the last byte address.
    #[must_use]
    pub const fn end(&self) -> u64 {
        self.start + self.size
    }

    /// Allocation state.
    #[must_use]
    pub const fn state(&self) -> &BlockState {
        &self.state
    }

    pub(crate) fn state_mut(&mut self) -> &mut BlockState {
        &mut self.state
    }

    pub(crate) fn set_size(&mut self, size: u64) {
        debug_assert!(size > 0);
        self.size = size;
    }

    /// Whether the block is free.
    #[must_use]
    pub fn is_free(&self) -> bool {
        self.state.is_free()
    }

    /// Whether the block may be chosen as a spill victim: free blocks
    /// always may (they contribute space for free); allocated blocks
    /// only when not pinned.
    #[must_use]
    pub fn is_spillable(&self) -> bool {
        match &self.state {
            BlockState::Free => true,
            BlockState::Allocated(data) => !data.pinned,
        }
    }

    /// The spill disadvantage of this block (Algorithm 2 line 15):
    /// `size x remain_uses` for allocated blocks, zero for free ones.
    #[must_use]
    pub fn disadvantage(&self) -> u64 {
        match &self.state {
            BlockState::Free => 0,
            BlockState::Allocated(data) => self.size * u64::from(data.remain_uses),
        }
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.state {
            BlockState::Free => write!(f, "[{:#06x}+{}: free]", self.start, self.size),
            BlockState::Allocated(d) => write!(
                f,
                "[{:#06x}+{}: {} uses={}{}{}]",
                self.start,
                self.size,
                d.tile,
                d.remain_uses,
                if d.dirty { " dirty" } else { "" },
                if d.pinned { " pinned" } else { "" },
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile() -> TileId {
        TileId::Weight { k: 0, c: 0 }
    }

    #[test]
    fn geometry() {
        let b = Block::new(16, 48, BlockState::Free);
        assert_eq!(b.start(), 16);
        assert_eq!(b.size(), 48);
        assert_eq!(b.end(), 64);
        assert!(b.is_free());
    }

    #[test]
    fn disadvantage_weighs_remaining_uses() {
        let free = Block::new(0, 100, BlockState::Free);
        assert_eq!(free.disadvantage(), 0);
        let used = Block::new(
            0,
            100,
            BlockState::Allocated(TileData {
                tile: tile(),
                remain_uses: 3,
                dirty: false,
                pinned: false,
            }),
        );
        assert_eq!(used.disadvantage(), 300);
    }

    #[test]
    fn pinned_blocks_are_not_spillable() {
        let pinned = Block::new(
            0,
            10,
            BlockState::Allocated(TileData {
                tile: tile(),
                remain_uses: 1,
                dirty: false,
                pinned: true,
            }),
        );
        assert!(!pinned.is_spillable());
        assert!(Block::new(0, 10, BlockState::Free).is_spillable());
    }

    #[test]
    fn display_shows_flags() {
        let b = Block::new(
            0,
            10,
            BlockState::Allocated(TileData {
                tile: tile(),
                remain_uses: 2,
                dirty: true,
                pinned: false,
            }),
        );
        let s = b.to_string();
        assert!(s.contains("dirty"));
        assert!(!s.contains("pinned"));
    }
}
