//! Shared on-chip scratchpad (global buffer) model.
//!
//! Flexer treats the shared on-chip memory like the register file of a
//! list instruction scheduler: data tiles are assigned to
//! variable-sized "registers" by greedy allocation, and data movement
//! to/from DRAM plays the role of spill code (paper §3). Out-of-order
//! schedules produce *irregular* allocation sequences, so memory
//! fragmentation — not an issue for loop-order schedules with fixed
//! data regions — becomes the limiting factor (paper §4.1).
//!
//! This crate provides:
//!
//! * [`SpmMemory`] — a byte-granular, block-based model of the global
//!   buffer: an address-ordered list of allocated/free blocks covering
//!   the whole capacity, with tile residency, per-tile remaining-use
//!   counts, dirty bits, and pinning of in-flight operands;
//! * the allocation procedure of §4.1 — in-place replacement of dead
//!   equal-sized blocks first, then best-fit placement in free blocks,
//!   then spilling;
//! * transactional planning — [`SpmMemory::checkpoint`] /
//!   [`SpmMemory::rollback`] record an undo journal so a scheduler can
//!   trial-allocate a candidate operation set on its live scratchpad
//!   and revert in `O(mutations)` instead of cloning the block map;
//! * [`SpillPolicy`] implementations — [`FlexerSpill`] (the paper's
//!   Algorithm 2: minimize fragmentation, then maximize remaining
//!   reuse, then minimize block count), plus the two ablation policies
//!   of Table 2: [`FirstFitSpill`] (MemPolicy1) and
//!   [`SmallestFirstSpill`] (MemPolicy2).
//!
//! # Examples
//!
//! ```
//! use flexer_spm::{FlexerSpill, SpmMemory};
//! use flexer_tiling::TileId;
//!
//! let mut spm = SpmMemory::new(1024);
//! let t = TileId::Input { c: 0, s: 0 };
//! let outcome = spm.allocate(t, 256, 4, &FlexerSpill)?;
//! assert!(outcome.evictions.is_empty());
//! assert!(spm.contains(t));
//! assert_eq!(spm.free_bytes(), 768);
//! # Ok::<(), flexer_spm::AllocError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod memory;
mod policy;

pub use block::{Block, BlockState, TileData};
pub use memory::{
    AllocError, AllocMethod, AllocOutcome, Checkpoint, Eviction, MemSnapshot, SpmMemory, TileMove,
};
pub use policy::{FirstFitSpill, FlexerSpill, SmallestFirstSpill, SpillPolicy};
