//! The scratchpad memory model and its allocation procedure.

use crate::block::{Block, BlockState, TileData};
use crate::policy::SpillPolicy;
use flexer_tiling::TileId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// How an allocation request was satisfied (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocMethod {
    /// The tile was already resident; nothing changed.
    AlreadyResident,
    /// A dead, equally-sized block was replaced in place.
    InPlace,
    /// A free block was carved with best-fit placement.
    FreeBlock,
    /// Victim blocks were spilled first, then the hole was used.
    AfterSpill,
}

/// One evicted tile, reported so the caller can account the traffic
/// and emit a write-back for dirty data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Eviction {
    /// The evicted tile.
    pub tile: TileId,
    /// Start address of the block it occupied.
    pub address: u64,
    /// Its byte size.
    pub bytes: u64,
    /// Whether the on-chip copy was dirty (needs a write-back).
    pub dirty: bool,
    /// Remaining operand references the tile had (each will cost a
    /// reload).
    pub remain_uses: u32,
}

/// Result of a successful [`SpmMemory::allocate`] call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocOutcome {
    /// How the request was satisfied.
    pub method: AllocMethod,
    /// Start address of the tile's block.
    pub address: u64,
    /// Tiles evicted to make room, in eviction order.
    pub evictions: Vec<Eviction>,
    /// Bytes moved by on-chip compaction when fragmentation (typically
    /// pinned islands) defeated the spill policy. Zero in the common
    /// case.
    pub compaction_bytes: u64,
    /// Exactly which tiles compaction relocated (empty in the common
    /// case).
    pub compaction_moves: Vec<TileMove>,
}

/// Error returned when an allocation cannot be satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// The request exceeds the total scratchpad capacity.
    TileTooLarge {
        /// Requested bytes.
        requested: u64,
        /// Scratchpad capacity.
        capacity: u64,
    },
    /// No spill-victim selection can free a sufficient contiguous
    /// region (e.g. too much memory is pinned).
    InsufficientMemory {
        /// Requested bytes.
        requested: u64,
        /// Bytes currently free (possibly fragmented).
        free: u64,
    },
    /// The requested size was zero.
    ZeroSize,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::TileTooLarge {
                requested,
                capacity,
            } => write!(
                f,
                "tile of {requested} bytes exceeds scratchpad capacity of {capacity} bytes"
            ),
            AllocError::InsufficientMemory { requested, free } => write!(
                f,
                "cannot free a contiguous {requested}-byte region ({free} bytes free)"
            ),
            AllocError::ZeroSize => write!(f, "allocation size must be positive"),
        }
    }
}

impl Error for AllocError {}

/// One tile relocated by [`SpmMemory::compact`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileMove {
    /// The relocated tile.
    pub tile: TileId,
    /// Its byte size.
    pub bytes: u64,
    /// Address before compaction.
    pub from: u64,
    /// Address after compaction.
    pub to: u64,
}

/// Aggregate occupancy statistics of the scratchpad.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemSnapshot {
    /// Bytes currently allocated.
    pub used_bytes: u64,
    /// Bytes currently free.
    pub free_bytes: u64,
    /// Number of disjoint free regions.
    pub free_fragments: usize,
    /// Size of the largest free region.
    pub largest_free: u64,
    /// Allocated fraction in `[0, 1]`.
    pub utilization: f64,
}

/// One reversible mutation of the block map, recorded while a
/// transaction ([`SpmMemory::checkpoint`]) is active.
///
/// Entries are undone strictly last-in-first-out, so every stored
/// index is valid at the moment its entry is undone: later mutations
/// (and their index shifts) have already been reverted.
#[derive(Debug, Clone)]
enum JournalEntry {
    /// Block `index` previously held `old` (state-only change: evict,
    /// in-place replace, exact-fit placement, pin/dirty/use updates).
    State {
        /// Block index at mutation time.
        index: usize,
        /// The overwritten state.
        old: BlockState,
    },
    /// Free block `index` was split by a placement: it now holds the
    /// allocation and a free remainder was inserted at `index + 1`.
    SplitPlace {
        /// Block index at mutation time.
        index: usize,
        /// The original (larger) free block.
        old: Block,
    },
    /// Free block `index` absorbed its free right neighbour of `size`
    /// bytes during coalescing.
    Absorb {
        /// Surviving block index.
        index: usize,
        /// Size of the removed neighbour.
        size: u64,
    },
    /// Whole-map snapshot taken before a structural rewrite
    /// (compaction). Rare: only when fragmentation defeats the spill
    /// policy inside a transaction.
    Snapshot {
        /// The complete pre-rewrite block map.
        blocks: Vec<Block>,
    },
}

impl JournalEntry {
    /// Approximate heap bytes this entry cost to record, used for the
    /// rollback-vs-clone accounting in scheduler statistics.
    fn cost_bytes(&self) -> u64 {
        let base = std::mem::size_of::<JournalEntry>() as u64;
        match self {
            JournalEntry::Snapshot { blocks } => {
                base + (blocks.len() * std::mem::size_of::<Block>()) as u64
            }
            _ => base,
        }
    }
}

/// A transaction token returned by [`SpmMemory::checkpoint`].
///
/// Pass it back to [`SpmMemory::rollback`] to undo every mutation made
/// since, or to [`SpmMemory::commit`] to keep them. Tokens must be
/// resolved in LIFO order when transactions nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a checkpoint must be resolved by rollback() or commit()"]
pub struct Checkpoint {
    mark: usize,
}

/// The shared on-chip global buffer as an address-ordered block map
/// (paper §4.1).
///
/// The block list always covers `[0, capacity)` exactly, contains no
/// zero-sized blocks and no two adjacent free blocks, and holds each
/// tile at most once. These invariants are property-tested.
///
/// # Transactions
///
/// [`SpmMemory::checkpoint`] opens an undo scope: every subsequent
/// mutation is recorded in an internal journal and can be reverted
/// with [`SpmMemory::rollback`], or made permanent with
/// [`SpmMemory::commit`]. This lets a scheduler *plan* a candidate
/// operation set directly on its live scratchpad and discard the plan
/// in `O(mutations)` instead of deep-cloning the block map per
/// candidate. Outside a transaction the journal is inactive and
/// mutations carry no extra cost.
///
/// # Examples
///
/// ```
/// use flexer_spm::{FlexerSpill, SpmMemory};
/// use flexer_tiling::TileId;
///
/// let mut spm = SpmMemory::new(256);
/// let a = TileId::Input { c: 0, s: 0 };
/// let b = TileId::Weight { k: 0, c: 0 };
/// spm.allocate(a, 128, 1, &FlexerSpill)?;
/// spm.allocate(b, 128, 1, &FlexerSpill)?;
/// assert_eq!(spm.free_bytes(), 0);
///
/// // `a` is dead after its last use; a same-sized tile replaces it
/// // in place.
/// spm.set_remain_uses(a, 0);
/// let c = TileId::Input { c: 1, s: 0 };
/// let outcome = spm.allocate(c, 128, 1, &FlexerSpill)?;
/// assert_eq!(outcome.method, flexer_spm::AllocMethod::InPlace);
/// # Ok::<(), flexer_spm::AllocError>(())
/// ```
#[derive(Debug, Serialize, Deserialize)]
pub struct SpmMemory {
    capacity: u64,
    blocks: Vec<Block>,
    /// Undo journal; only populated while `tx_depth > 0`.
    journal: Vec<JournalEntry>,
    /// Number of open (un-resolved) checkpoints.
    tx_depth: usize,
    /// Tile → block start address, kept exactly in sync with `blocks`
    /// (including through journal undo). Turns residency lookups from
    /// an O(blocks) scan into a hash probe plus a binary search.
    resident: HashMap<TileId, u64>,
}

/// A clone is a fresh snapshot of the block map: it does not inherit
/// the source's open transactions or journal.
impl Clone for SpmMemory {
    fn clone(&self) -> Self {
        Self {
            capacity: self.capacity,
            blocks: self.blocks.clone(),
            journal: Vec::new(),
            tx_depth: 0,
            resident: self.resident.clone(),
        }
    }
}

/// Equality is over the observable memory state (capacity and block
/// map); transaction bookkeeping is ignored, so a transactional
/// scratchpad compares equal to a plain clone of the same state.
impl PartialEq for SpmMemory {
    fn eq(&self, other: &Self) -> bool {
        self.capacity == other.capacity && self.blocks == other.blocks
    }
}

impl SpmMemory {
    /// Creates an empty scratchpad of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "scratchpad capacity must be positive");
        Self {
            capacity,
            blocks: vec![Block::new(0, capacity, BlockState::Free)],
            journal: Vec::new(),
            tx_depth: 0,
            resident: HashMap::new(),
        }
    }

    /// Opens a transaction: every mutation until the matching
    /// [`SpmMemory::rollback`] or [`SpmMemory::commit`] is journaled
    /// and reversible. Transactions nest; tokens must be resolved in
    /// LIFO order.
    pub fn checkpoint(&mut self) -> Checkpoint {
        self.tx_depth += 1;
        Checkpoint {
            mark: self.journal.len(),
        }
    }

    /// Reverts every mutation recorded since `token` was issued and
    /// closes that transaction. Returns the approximate journal bytes
    /// undone (for rollback-vs-clone accounting).
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open or `token` is out of order.
    pub fn rollback(&mut self, token: Checkpoint) -> u64 {
        assert!(self.tx_depth > 0, "rollback without an open checkpoint");
        assert!(
            token.mark <= self.journal.len(),
            "checkpoint resolved out of LIFO order"
        );
        let mut undone = 0u64;
        while self.journal.len() > token.mark {
            let entry = self.journal.pop().expect("journal length checked");
            undone += entry.cost_bytes();
            self.undo(entry);
        }
        self.tx_depth -= 1;
        undone
    }

    /// Closes the transaction opened by `token`, keeping its
    /// mutations. Once the outermost transaction commits, the journal
    /// is discarded.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open or `token` is out of order.
    pub fn commit(&mut self, token: Checkpoint) {
        assert!(self.tx_depth > 0, "commit without an open checkpoint");
        assert!(
            token.mark <= self.journal.len(),
            "checkpoint resolved out of LIFO order"
        );
        self.tx_depth -= 1;
        if self.tx_depth == 0 {
            self.journal.clear();
        }
    }

    /// Whether a transaction is currently open.
    #[must_use]
    pub fn in_transaction(&self) -> bool {
        self.tx_depth > 0
    }

    /// Number of journal entries currently recorded.
    #[must_use]
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    /// Approximate heap footprint of the block map — the bytes a
    /// deep clone of this scratchpad would copy.
    #[must_use]
    pub fn footprint_bytes(&self) -> u64 {
        (self.blocks.len() * std::mem::size_of::<Block>()) as u64
    }

    /// Records `entry` if a transaction is active.
    #[inline]
    fn record(&mut self, entry: JournalEntry) {
        if self.tx_depth > 0 {
            self.journal.push(entry);
        }
    }

    /// Reverts a single journal entry. Only sound when applied in
    /// strict LIFO order (see [`JournalEntry`]): the block's index and
    /// start address at undo time match those at mutation time, so the
    /// resident map can be patched in place.
    fn undo(&mut self, entry: JournalEntry) {
        match entry {
            JournalEntry::State { index, old } => {
                let address = self.blocks[index].start();
                if let Some(d) = self.blocks[index].state().tile_data() {
                    self.resident.remove(&d.tile);
                }
                if let Some(d) = old.tile_data() {
                    self.resident.insert(d.tile, address);
                }
                *self.blocks[index].state_mut() = old;
            }
            JournalEntry::SplitPlace { index, old } => {
                if let Some(d) = self.blocks[index].state().tile_data() {
                    self.resident.remove(&d.tile);
                }
                self.blocks.remove(index + 1);
                self.blocks[index] = old;
            }
            JournalEntry::Absorb { index, size } => {
                let shrunk = self.blocks[index].size() - size;
                self.blocks[index].set_size(shrunk);
                let start = self.blocks[index].start() + shrunk;
                self.blocks
                    .insert(index + 1, Block::new(start, size, BlockState::Free));
            }
            JournalEntry::Snapshot { blocks } => {
                self.blocks = blocks;
                self.rebuild_resident();
            }
        }
    }

    /// Overwrites the state of block `i`, journaling the old state and
    /// keeping the resident map in sync.
    fn set_state(&mut self, i: usize, state: BlockState) {
        let old = *self.blocks[i].state();
        self.record(JournalEntry::State { index: i, old });
        if let Some(d) = old.tile_data() {
            self.resident.remove(&d.tile);
        }
        if let Some(d) = state.tile_data() {
            self.resident.insert(d.tile, self.blocks[i].start());
        }
        *self.blocks[i].state_mut() = state;
    }

    /// Recomputes the resident map from the block map, after structural
    /// rewrites that move blocks wholesale (compaction and its undo).
    fn rebuild_resident(&mut self) {
        self.resident.clear();
        for b in &self.blocks {
            if let Some(d) = b.state().tile_data() {
                self.resident.insert(d.tile, b.start());
            }
        }
    }

    /// Total capacity in bytes.
    #[must_use]
    pub const fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The address-ordered block map.
    #[must_use]
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Bytes currently free (may be fragmented).
    #[must_use]
    pub fn free_bytes(&self) -> u64 {
        self.blocks
            .iter()
            .filter(|b| b.is_free())
            .map(Block::size)
            .sum()
    }

    /// Bytes currently allocated.
    #[must_use]
    pub fn used_bytes(&self) -> u64 {
        self.capacity - self.free_bytes()
    }

    /// Allocated fraction in `[0, 1]`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.used_bytes() as f64 / self.capacity as f64
    }

    /// Occupancy statistics.
    #[must_use]
    pub fn snapshot(&self) -> MemSnapshot {
        let free: Vec<u64> = self
            .blocks
            .iter()
            .filter(|b| b.is_free())
            .map(Block::size)
            .collect();
        let free_bytes: u64 = free.iter().sum();
        MemSnapshot {
            used_bytes: self.capacity - free_bytes,
            free_bytes,
            free_fragments: free.len(),
            largest_free: free.iter().copied().max().unwrap_or(0),
            utilization: (self.capacity - free_bytes) as f64 / self.capacity as f64,
        }
    }

    /// Index of the block holding `tile`, if resident.
    ///
    /// O(log blocks): the resident map yields the block's start
    /// address, and the address-ordered block map is binary-searched
    /// for it. Debug builds cross-check against the original linear
    /// scan.
    fn find_index(&self, tile: TileId) -> Option<usize> {
        let found = self.resident.get(&tile).and_then(|&addr| {
            let i = self
                .blocks
                .binary_search_by(|b| b.start().cmp(&addr))
                .ok()?;
            self.blocks[i]
                .state()
                .tile_data()
                .is_some_and(|d| d.tile == tile)
                .then_some(i)
        });
        debug_assert_eq!(
            found,
            self.blocks
                .iter()
                .position(|b| b.state().tile_data().is_some_and(|d| d.tile == tile)),
            "resident map out of sync for {tile}"
        );
        found
    }

    /// Whether `tile` is resident.
    #[must_use]
    pub fn contains(&self, tile: TileId) -> bool {
        self.find_index(tile).is_some()
    }

    /// Start address of the block holding `tile`, if resident.
    #[must_use]
    pub fn address_of(&self, tile: TileId) -> Option<u64> {
        self.find_index(tile).map(|i| self.blocks[i].start())
    }

    /// Residency metadata of `tile`, if resident.
    #[must_use]
    pub fn tile_data(&self, tile: TileId) -> Option<&TileData> {
        self.find_index(tile)
            .and_then(|i| self.blocks[i].state().tile_data())
    }

    fn tile_data_mut(&mut self, tile: TileId) -> Option<&mut TileData> {
        let i = self.find_index(tile)?;
        // Journal the whole pre-mutation state: the caller receives a
        // mutable handle, so any field may change.
        let old = *self.blocks[i].state();
        self.record(JournalEntry::State { index: i, old });
        match self.blocks[i].state_mut() {
            BlockState::Free => None,
            BlockState::Allocated(data) => Some(data),
        }
    }

    /// Sets the remaining-use count of a resident tile. Returns whether
    /// the tile was resident.
    pub fn set_remain_uses(&mut self, tile: TileId, uses: u32) -> bool {
        if let Some(d) = self.tile_data_mut(tile) {
            d.remain_uses = uses;
            true
        } else {
            false
        }
    }

    /// Decrements (saturating) the remaining-use count of a resident
    /// tile. Returns whether the tile was resident.
    pub fn decrement_uses(&mut self, tile: TileId) -> bool {
        if let Some(d) = self.tile_data_mut(tile) {
            d.remain_uses = d.remain_uses.saturating_sub(1);
            true
        } else {
            false
        }
    }

    /// Sets the dirty bit of a resident tile. Returns whether the tile
    /// was resident.
    pub fn set_dirty(&mut self, tile: TileId, dirty: bool) -> bool {
        if let Some(d) = self.tile_data_mut(tile) {
            d.dirty = dirty;
            true
        } else {
            false
        }
    }

    /// Pins a resident tile so it cannot be spilled. Returns whether
    /// the tile was resident.
    pub fn pin(&mut self, tile: TileId) -> bool {
        if let Some(d) = self.tile_data_mut(tile) {
            d.pinned = true;
            true
        } else {
            false
        }
    }

    /// Clears every pin.
    pub fn unpin_all(&mut self) {
        for i in 0..self.blocks.len() {
            if self.blocks[i].state().tile_data().is_some_and(|d| d.pinned) {
                let old = *self.blocks[i].state();
                self.record(JournalEntry::State { index: i, old });
                if let BlockState::Allocated(d) = self.blocks[i].state_mut() {
                    d.pinned = false;
                }
            }
        }
    }

    /// Evicts a resident tile, freeing its block. Returns the eviction
    /// record, or `None` if the tile was not resident.
    pub fn evict(&mut self, tile: TileId) -> Option<Eviction> {
        let i = self.find_index(tile)?;
        let ev = self.evict_index(i);
        self.coalesce();
        ev
    }

    /// Marks block `i` free and returns its eviction record (if it was
    /// allocated). Does not coalesce.
    fn evict_index(&mut self, i: usize) -> Option<Eviction> {
        let size = self.blocks[i].size();
        match *self.blocks[i].state() {
            BlockState::Free => None,
            BlockState::Allocated(data) => {
                debug_assert!(!data.pinned, "must not evict pinned tile {}", data.tile);
                let address = self.blocks[i].start();
                self.set_state(i, BlockState::Free);
                Some(Eviction {
                    tile: data.tile,
                    address,
                    bytes: size,
                    dirty: data.dirty,
                    remain_uses: data.remain_uses,
                })
            }
        }
    }

    /// Merges adjacent free blocks in place (no reallocation), one
    /// journaled absorption per merged pair.
    fn coalesce(&mut self) {
        let mut i = 0;
        while i + 1 < self.blocks.len() {
            if self.blocks[i].is_free() && self.blocks[i + 1].is_free() {
                let absorbed = self.blocks.remove(i + 1);
                let grown = self.blocks[i].size() + absorbed.size();
                self.blocks[i].set_size(grown);
                self.record(JournalEntry::Absorb {
                    index: i,
                    size: absorbed.size(),
                });
            } else {
                i += 1;
            }
        }
    }

    /// Index of the best-fit free block for `size`: the smallest free
    /// block that fits, lowest address on ties.
    fn best_fit_index(&self, size: u64) -> Option<usize> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_free() && b.size() >= size)
            .min_by_key(|(i, b)| (b.size(), *i))
            .map(|(i, _)| i)
    }

    /// Places `data` into free block `i`, splitting off the remainder.
    fn place_in_free(&mut self, i: usize, size: u64, data: TileData) -> u64 {
        let block = self.blocks[i];
        debug_assert!(block.is_free() && block.size() >= size);
        let address = block.start();
        if block.size() == size {
            self.set_state(i, BlockState::Allocated(data));
        } else {
            self.record(JournalEntry::SplitPlace {
                index: i,
                old: block,
            });
            let rest = Block::new(address + size, block.size() - size, BlockState::Free);
            self.resident.insert(data.tile, address);
            self.blocks[i] = Block::new(address, size, BlockState::Allocated(data));
            self.blocks.insert(i + 1, rest);
        }
        address
    }

    /// Allocates `size` bytes for `tile`, following the paper's §4.1
    /// procedure: in-place replacement of a dead equal-sized block
    /// first, then best-fit placement in a free block, then spilling
    /// victims chosen by `policy`.
    ///
    /// The new tile starts clean and unpinned with `remain_uses`
    /// remaining references. If the tile is already resident the call
    /// is a no-op reporting [`AllocMethod::AlreadyResident`].
    ///
    /// # Errors
    ///
    /// * [`AllocError::ZeroSize`] for `size == 0`;
    /// * [`AllocError::TileTooLarge`] if `size` exceeds the capacity;
    /// * [`AllocError::InsufficientMemory`] if `policy` cannot free a
    ///   sufficient contiguous region (for instance because too many
    ///   tiles are pinned).
    pub fn allocate(
        &mut self,
        tile: TileId,
        size: u64,
        remain_uses: u32,
        policy: &dyn SpillPolicy,
    ) -> Result<AllocOutcome, AllocError> {
        if size == 0 {
            return Err(AllocError::ZeroSize);
        }
        if size > self.capacity {
            return Err(AllocError::TileTooLarge {
                requested: size,
                capacity: self.capacity,
            });
        }
        if let Some(i) = self.find_index(tile) {
            return Ok(AllocOutcome {
                method: AllocMethod::AlreadyResident,
                address: self.blocks[i].start(),
                evictions: Vec::new(),
                compaction_bytes: 0,
                compaction_moves: Vec::new(),
            });
        }
        let data = TileData {
            tile,
            remain_uses,
            dirty: false,
            pinned: false,
        };

        // 1. In-place replacement of a dead, equally-sized block.
        let in_place = self.blocks.iter().position(|b| {
            b.size() == size
                && b.state()
                    .tile_data()
                    .is_some_and(|d| d.remain_uses == 0 && !d.pinned)
        });
        if let Some(i) = in_place {
            let eviction = self.evict_index(i).expect("block is allocated");
            self.set_state(i, BlockState::Allocated(data));
            return Ok(AllocOutcome {
                method: AllocMethod::InPlace,
                address: self.blocks[i].start(),
                evictions: vec![eviction],
                compaction_bytes: 0,
                compaction_moves: Vec::new(),
            });
        }

        // 2. Best-fit placement in a free block.
        if let Some(i) = self.best_fit_index(size) {
            let address = self.place_in_free(i, size, data);
            return Ok(AllocOutcome {
                method: AllocMethod::FreeBlock,
                address,
                evictions: Vec::new(),
                compaction_bytes: 0,
                compaction_moves: Vec::new(),
            });
        }

        // 3. Spill victims chosen by the policy. If fragmentation
        // (typically pinned islands) defeats the policy, compact once
        // and retry — afterwards all spillable space is contiguous.
        let mut compaction_moves = Vec::new();
        let victims = match policy.select_victims(self, size) {
            Some(v) => v,
            None => {
                compaction_moves = self.compact_with_moves();
                let compaction_bytes = compaction_moves.iter().map(|m| m.bytes).sum();
                if let Some(i) = self.best_fit_index(size) {
                    let address = self.place_in_free(i, size, data);
                    return Ok(AllocOutcome {
                        method: AllocMethod::AfterSpill,
                        address,
                        evictions: Vec::new(),
                        compaction_bytes,
                        compaction_moves,
                    });
                }
                policy
                    .select_victims(self, size)
                    .ok_or(AllocError::InsufficientMemory {
                        requested: size,
                        free: self.free_bytes(),
                    })?
            }
        };
        let mut evictions = Vec::with_capacity(victims.len());
        let mut sorted = victims;
        sorted.sort_unstable();
        sorted.dedup();
        for &i in sorted.iter().rev() {
            if let Some(ev) = self.evict_index(i) {
                evictions.push(ev);
            }
        }
        evictions.reverse();
        self.coalesce();
        let i = self
            .best_fit_index(size)
            .expect("spill policy must free a sufficient contiguous region");
        let address = self.place_in_free(i, size, data);
        Ok(AllocOutcome {
            method: AllocMethod::AfterSpill,
            address,
            evictions,
            compaction_bytes: compaction_moves.iter().map(|m| m.bytes).sum(),
            compaction_moves,
        })
    }

    /// Compacts the scratchpad: packs every allocated block to the
    /// lowest addresses — pinned blocks first, then the rest in
    /// address order — leaving one contiguous free region at the top.
    /// Returns the number of bytes that had to move (the on-chip copy
    /// cost a real system would pay).
    ///
    /// Compaction is the last resort when pinned tiles fragment the
    /// buffer so badly that no spill-victim selection can produce a
    /// sufficient hole. Segregating the pinned blocks guarantees that
    /// afterwards all spillable space (unpinned blocks plus the free
    /// region) is contiguous, so any request up to
    /// `capacity - pinned bytes` can be satisfied.
    pub fn compact(&mut self) -> u64 {
        self.compact_with_moves().iter().map(|m| m.bytes).sum()
    }

    /// [`SpmMemory::compact`], reporting exactly which tiles moved
    /// where — the information a code generator needs to emit the
    /// corresponding on-chip copy commands.
    pub fn compact_with_moves(&mut self) -> Vec<TileMove> {
        if self.tx_depth > 0 {
            // Structural rewrite: journal the whole pre-compaction map.
            self.record(JournalEntry::Snapshot {
                blocks: self.blocks.clone(),
            });
        }
        let mut allocated: Vec<Block> = self.blocks.drain(..).filter(|b| !b.is_free()).collect();
        allocated.sort_by_key(|b| {
            let pinned = b.state().tile_data().is_some_and(|d| d.pinned);
            (!pinned, b.start())
        });
        let mut moves = Vec::new();
        let mut cursor = 0u64;
        let mut packed: Vec<Block> = Vec::with_capacity(allocated.len() + 1);
        for block in allocated {
            if block.start() != cursor {
                let tile = block
                    .state()
                    .tile_data()
                    .expect("allocated blocks hold tiles")
                    .tile;
                moves.push(TileMove {
                    tile,
                    bytes: block.size(),
                    from: block.start(),
                    to: cursor,
                });
            }
            packed.push(Block::new(cursor, block.size(), *block.state()));
            cursor += block.size();
        }
        if cursor < self.capacity {
            packed.push(Block::new(cursor, self.capacity - cursor, BlockState::Free));
        }
        self.blocks = packed;
        self.rebuild_resident();
        moves
    }

    /// Checks the structural invariants of the block map. Used by
    /// tests; cheap enough to call in debug assertions.
    ///
    /// # Panics
    ///
    /// Panics if an invariant is violated.
    pub fn assert_invariants(&self) {
        assert!(!self.blocks.is_empty());
        assert_eq!(self.blocks[0].start(), 0, "map must start at 0");
        let mut tiles = std::collections::BTreeSet::new();
        for (i, b) in self.blocks.iter().enumerate() {
            assert!(b.size() > 0, "zero-sized block at {i}");
            if i + 1 < self.blocks.len() {
                assert_eq!(
                    b.end(),
                    self.blocks[i + 1].start(),
                    "gap or overlap after block {i}"
                );
                assert!(
                    !(b.is_free() && self.blocks[i + 1].is_free()),
                    "uncoalesced free blocks at {i}"
                );
            }
            if let Some(d) = b.state().tile_data() {
                assert!(tiles.insert(d.tile), "tile {} resident twice", d.tile);
            }
        }
        assert_eq!(
            self.blocks.last().unwrap().end(),
            self.capacity,
            "map must cover the whole capacity"
        );
    }
}

impl fmt::Display for SpmMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SPM {}B, {:.0}% used:",
            self.capacity,
            self.utilization() * 100.0
        )?;
        for b in &self.blocks {
            writeln!(f, "  {b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FlexerSpill;

    fn t(n: u32) -> TileId {
        TileId::Input { c: n, s: 0 }
    }

    fn filled() -> SpmMemory {
        // Four 64-byte tiles filling a 256-byte scratchpad.
        let mut spm = SpmMemory::new(256);
        for i in 0..4 {
            spm.allocate(t(i), 64, 2, &FlexerSpill).unwrap();
        }
        spm.assert_invariants();
        spm
    }

    #[test]
    fn fresh_memory_is_one_free_block() {
        let spm = SpmMemory::new(1024);
        assert_eq!(spm.blocks().len(), 1);
        assert_eq!(spm.free_bytes(), 1024);
        assert_eq!(spm.used_bytes(), 0);
        spm.assert_invariants();
    }

    #[test]
    fn sequential_allocation_packs_from_zero() {
        let spm = filled();
        let starts: Vec<u64> = spm.blocks().iter().map(Block::start).collect();
        assert_eq!(starts, [0, 64, 128, 192]);
        assert_eq!(spm.utilization(), 1.0);
    }

    #[test]
    fn already_resident_is_a_no_op() {
        let mut spm = filled();
        let outcome = spm.allocate(t(0), 64, 9, &FlexerSpill).unwrap();
        assert_eq!(outcome.method, AllocMethod::AlreadyResident);
        assert!(outcome.evictions.is_empty());
        // remain_uses untouched by the no-op.
        assert_eq!(spm.tile_data(t(0)).unwrap().remain_uses, 2);
    }

    #[test]
    fn in_place_replacement_of_dead_block() {
        let mut spm = filled();
        spm.set_remain_uses(t(2), 0);
        let outcome = spm.allocate(t(9), 64, 3, &FlexerSpill).unwrap();
        assert_eq!(outcome.method, AllocMethod::InPlace);
        assert_eq!(outcome.address, 128);
        assert_eq!(outcome.evictions.len(), 1);
        assert_eq!(outcome.evictions[0].tile, t(2));
        assert!(!spm.contains(t(2)));
        assert!(spm.contains(t(9)));
        spm.assert_invariants();
    }

    #[test]
    fn in_place_requires_exact_size_and_death() {
        let mut spm = filled();
        // Alive blocks are not replaced in place; spilling happens.
        let outcome = spm.allocate(t(9), 64, 1, &FlexerSpill).unwrap();
        assert_eq!(outcome.method, AllocMethod::AfterSpill);
        spm.assert_invariants();
    }

    #[test]
    fn best_fit_prefers_smallest_hole() {
        let mut spm = SpmMemory::new(256);
        spm.allocate(t(0), 64, 1, &FlexerSpill).unwrap();
        spm.allocate(t(1), 32, 1, &FlexerSpill).unwrap();
        spm.allocate(t(2), 160, 1, &FlexerSpill).unwrap();
        // Free the 64B and 160B blocks -> holes of 64 and 160.
        spm.evict(t(0));
        spm.evict(t(2));
        spm.assert_invariants();
        let outcome = spm.allocate(t(3), 48, 1, &FlexerSpill).unwrap();
        assert_eq!(outcome.method, AllocMethod::FreeBlock);
        // Best fit picks the 64-byte hole at address 0, not the 160er.
        assert_eq!(outcome.address, 0);
        spm.assert_invariants();
    }

    #[test]
    fn eviction_coalesces_neighbours() {
        let mut spm = filled();
        spm.evict(t(1));
        spm.evict(t(2));
        // Two adjacent frees merged into one 128-byte hole.
        let frees: Vec<_> = spm.blocks().iter().filter(|b| b.is_free()).collect();
        assert_eq!(frees.len(), 1);
        assert_eq!(frees[0].size(), 128);
        spm.assert_invariants();
    }

    #[test]
    fn pinned_tiles_survive_spilling() {
        let mut spm = filled();
        spm.pin(t(0));
        spm.pin(t(1));
        let outcome = spm.allocate(t(9), 128, 1, &FlexerSpill).unwrap();
        assert_eq!(outcome.method, AllocMethod::AfterSpill);
        assert!(spm.contains(t(0)));
        assert!(spm.contains(t(1)));
        assert!(!spm.contains(t(2)));
        assert!(!spm.contains(t(3)));
        spm.assert_invariants();
    }

    #[test]
    fn fully_pinned_memory_reports_insufficient() {
        let mut spm = filled();
        for i in 0..4 {
            spm.pin(t(i));
        }
        let err = spm.allocate(t(9), 64, 1, &FlexerSpill).unwrap_err();
        assert!(matches!(err, AllocError::InsufficientMemory { .. }));
    }

    #[test]
    fn oversized_and_zero_requests_rejected() {
        let mut spm = SpmMemory::new(128);
        assert!(matches!(
            spm.allocate(t(0), 129, 1, &FlexerSpill),
            Err(AllocError::TileTooLarge { .. })
        ));
        assert!(matches!(
            spm.allocate(t(0), 0, 1, &FlexerSpill),
            Err(AllocError::ZeroSize)
        ));
    }

    #[test]
    fn use_count_tracking() {
        let mut spm = filled();
        assert!(spm.decrement_uses(t(0)));
        assert_eq!(spm.tile_data(t(0)).unwrap().remain_uses, 1);
        assert!(spm.decrement_uses(t(0)));
        assert!(spm.decrement_uses(t(0))); // saturates at 0
        assert_eq!(spm.tile_data(t(0)).unwrap().remain_uses, 0);
        assert!(!spm.decrement_uses(t(9)));
    }

    #[test]
    fn dirty_bit_round_trip() {
        let mut spm = filled();
        assert!(!spm.tile_data(t(0)).unwrap().dirty);
        spm.set_dirty(t(0), true);
        assert!(spm.tile_data(t(0)).unwrap().dirty);
        let ev = spm.evict(t(0)).unwrap();
        assert!(ev.dirty);
    }

    #[test]
    fn unpin_all_clears_every_pin() {
        let mut spm = filled();
        spm.pin(t(0));
        spm.pin(t(3));
        spm.unpin_all();
        for i in 0..4 {
            assert!(!spm.tile_data(t(i)).unwrap().pinned);
        }
    }

    #[test]
    fn snapshot_reports_fragmentation() {
        let mut spm = filled();
        spm.evict(t(0));
        spm.evict(t(2));
        let snap = spm.snapshot();
        assert_eq!(snap.free_bytes, 128);
        assert_eq!(snap.free_fragments, 2);
        assert_eq!(snap.largest_free, 64);
        assert_eq!(snap.used_bytes, 128);
        assert!((snap.utilization - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SpmMemory::new(0);
    }

    #[test]
    fn compaction_consolidates_free_space() {
        let mut spm = filled();
        spm.evict(t(0));
        spm.evict(t(2));
        // Fragmented: two 64-byte holes; a 128-byte request has no
        // contiguous home.
        assert_eq!(spm.snapshot().largest_free, 64);
        let moved = spm.compact();
        // t(1) slides from 64 to 0, t(3) from 192 to 64.
        assert_eq!(moved, 128);
        spm.assert_invariants();
        assert_eq!(spm.snapshot().largest_free, 128);
        assert_eq!(spm.snapshot().free_fragments, 1);
        assert!(spm.contains(t(1)));
        assert!(spm.contains(t(3)));
        // Idempotent: nothing left to move.
        assert_eq!(spm.compact(), 0);
        spm.assert_invariants();
    }

    #[test]
    fn compaction_preserves_and_segregates_pinned_tiles() {
        let mut spm = filled();
        spm.pin(t(3));
        spm.evict(t(0));
        let moved = spm.compact();
        assert!(moved > 0);
        assert!(spm.tile_data(t(3)).unwrap().pinned);
        // The pinned block is packed to the bottom so every spillable
        // byte is contiguous above it.
        let first = &spm.blocks()[0];
        assert_eq!(first.start(), 0);
        assert_eq!(
            first.state().tile_data().map(|d| d.tile),
            Some(t(3)),
            "pinned tile must lead the packed layout"
        );
        spm.assert_invariants();
    }

    #[test]
    fn compaction_makes_unpinned_space_fully_allocatable() {
        // Pinned islands between unpinned tiles: after compaction a
        // request for all unpinned + free space must succeed.
        let mut spm = filled(); // 4 x 64 B
        spm.pin(t(1)); // island in the middle
        spm.evict(t(0));
        // Free 64 at 0, pinned t1 at 64, t2/t3 spillable above.
        let outcome = spm.allocate(t(9), 192, 1, &FlexerSpill).unwrap();
        assert_eq!(outcome.method, AllocMethod::AfterSpill);
        assert!(spm.contains(t(9)));
        assert!(spm.contains(t(1)));
        spm.assert_invariants();
    }

    #[test]
    fn display_renders_block_map() {
        let mut spm = SpmMemory::new(256);
        spm.allocate(t(0), 64, 2, &FlexerSpill).unwrap();
        spm.set_dirty(t(0), true);
        let s = spm.to_string();
        assert!(s.contains("SPM 256B"));
        assert!(s.contains("dirty"));
        assert!(s.contains("free"));
    }

    #[test]
    fn alloc_outcome_reports_compaction_bytes() {
        // Pinned island forces the allocator to compact.
        let mut spm = filled();
        spm.pin(t(1));
        spm.evict(t(0));
        let outcome = spm.allocate(t(9), 192, 1, &FlexerSpill).unwrap();
        assert!(outcome.compaction_bytes > 0);
        spm.assert_invariants();
    }

    #[test]
    fn rollback_reverts_allocation_spill_and_metadata() {
        let mut spm = filled();
        spm.set_dirty(t(1), true);
        let oracle = spm.clone();

        let token = spm.checkpoint();
        // Spill path: full memory, new 128-byte tile evicts victims.
        let outcome = spm.allocate(t(9), 128, 3, &FlexerSpill).unwrap();
        assert_eq!(outcome.method, AllocMethod::AfterSpill);
        spm.pin(t(9));
        spm.set_dirty(t(9), true);
        spm.decrement_uses(t(9));
        spm.evict(t(0));
        spm.unpin_all();
        spm.assert_invariants();
        assert_ne!(spm, oracle);

        let undone = spm.rollback(token);
        assert!(undone > 0);
        spm.assert_invariants();
        assert_eq!(spm, oracle);
        assert!(!spm.in_transaction());
        assert_eq!(spm.journal_len(), 0);
    }

    #[test]
    fn rollback_reverts_in_place_replacement() {
        let mut spm = filled();
        spm.set_remain_uses(t(2), 0);
        let oracle = spm.clone();
        let token = spm.checkpoint();
        let outcome = spm.allocate(t(9), 64, 3, &FlexerSpill).unwrap();
        assert_eq!(outcome.method, AllocMethod::InPlace);
        spm.rollback(token);
        assert_eq!(spm, oracle);
        spm.assert_invariants();
    }

    #[test]
    fn rollback_reverts_split_placement_and_coalesce() {
        let mut spm = SpmMemory::new(256);
        spm.allocate(t(0), 64, 1, &FlexerSpill).unwrap();
        spm.allocate(t(1), 64, 1, &FlexerSpill).unwrap();
        spm.evict(t(0)); // free 64 at 0 + free 128 at 128
        let oracle = spm.clone();
        let token = spm.checkpoint();
        // Split the 128-byte tail hole.
        spm.allocate(t(2), 96, 1, &FlexerSpill).unwrap();
        // Evicting t(1) coalesces three ways.
        spm.evict(t(1));
        spm.rollback(token);
        assert_eq!(spm, oracle);
        spm.assert_invariants();
    }

    #[test]
    fn rollback_reverts_compaction() {
        let mut spm = filled();
        spm.pin(t(1)); // pinned island defeats the spill policy
        spm.evict(t(0));
        let oracle = spm.clone();
        let token = spm.checkpoint();
        let outcome = spm.allocate(t(9), 192, 1, &FlexerSpill).unwrap();
        assert!(outcome.compaction_bytes > 0, "compaction path not taken");
        spm.rollback(token);
        assert_eq!(spm, oracle);
        spm.assert_invariants();
    }

    #[test]
    fn commit_keeps_mutations_and_clears_journal() {
        let mut spm = filled();
        let token = spm.checkpoint();
        spm.evict(t(0));
        spm.pin(t(1));
        spm.commit(token);
        assert!(!spm.contains(t(0)));
        assert!(spm.tile_data(t(1)).unwrap().pinned);
        assert!(!spm.in_transaction());
        assert_eq!(spm.journal_len(), 0);
        spm.assert_invariants();
    }

    #[test]
    fn nested_transactions_roll_back_independently() {
        let mut spm = filled();
        let outer = spm.checkpoint();
        spm.evict(t(0));
        let after_outer_op = spm.clone();
        let inner = spm.checkpoint();
        spm.evict(t(1));
        spm.rollback(inner);
        assert_eq!(spm, after_outer_op);
        // Inner commit/rollback must not have erased outer entries.
        let pristine = filled();
        spm.rollback(outer);
        assert_eq!(spm, pristine);
        spm.assert_invariants();
    }

    #[test]
    fn clone_does_not_inherit_transaction_state() {
        let mut spm = filled();
        let token = spm.checkpoint();
        spm.evict(t(0));
        let copy = spm.clone();
        assert!(!copy.in_transaction());
        assert_eq!(copy.journal_len(), 0);
        assert_eq!(copy, spm);
        spm.rollback(token);
        assert_ne!(copy, spm);
    }

    #[test]
    fn mutations_outside_transactions_do_not_journal() {
        let mut spm = filled();
        spm.evict(t(0));
        spm.pin(t(1));
        spm.allocate(t(9), 64, 1, &FlexerSpill).unwrap();
        assert_eq!(spm.journal_len(), 0);
    }

    #[test]
    #[should_panic(expected = "rollback without an open checkpoint")]
    fn rollback_without_checkpoint_panics() {
        let mut spm = SpmMemory::new(64);
        let token = {
            let t = spm.checkpoint();
            spm.commit(t);
            t
        };
        let _ = spm.rollback(token);
    }

    #[test]
    fn footprint_tracks_block_count() {
        let spm = filled();
        assert_eq!(
            spm.footprint_bytes(),
            std::mem::size_of_val(spm.blocks()) as u64
        );
    }

    #[test]
    fn compaction_of_full_or_empty_memory_is_a_no_op() {
        let mut full = filled();
        assert_eq!(full.compact(), 0);
        full.assert_invariants();
        let mut empty = SpmMemory::new(256);
        assert_eq!(empty.compact(), 0);
        empty.assert_invariants();
        assert_eq!(empty.free_bytes(), 256);
    }
}
