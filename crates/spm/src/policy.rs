//! Spill-victim selection policies.

use crate::memory::SpmMemory;
use std::fmt;

/// Chooses which blocks to evict when an allocation needs more room
/// than any free block offers.
///
/// Implementations return the indices (into [`SpmMemory::blocks`]) of
/// the blocks to evict, or `None` when no feasible selection exists.
/// After evicting the returned blocks and coalescing, the memory must
/// contain a contiguous free region of at least `required` bytes —
/// [`SpmMemory::allocate`] relies on this postcondition.
///
/// The trait is object-safe; schedulers hold policies as
/// `&dyn SpillPolicy` so they can be swapped per experiment (paper
/// Table 2 / Figure 12).
pub trait SpillPolicy: fmt::Debug + Send + Sync {
    /// Selects victim blocks for a `required`-byte allocation.
    fn select_victims(&self, memory: &SpmMemory, required: u64) -> Option<Vec<usize>>;

    /// Short name used in experiment output.
    fn name(&self) -> &'static str;
}

/// The paper's Algorithm 2: scan every contiguous candidate run of
/// blocks and keep the one that (1) causes the least fragmentation,
/// (2) on ties destroys the least remaining reuse
/// (`sum(size x remain_uses)`), and (3) on further ties spills the
/// fewest blocks.
///
/// Runs may include free blocks (they contribute space at zero
/// disadvantage) but never pinned blocks. For each start position only
/// the minimal-length feasible run is considered, exactly like the
/// `break` in Algorithm 2 line 33.
///
/// # Examples
///
/// ```
/// use flexer_spm::{FlexerSpill, SpillPolicy, SpmMemory};
/// use flexer_tiling::TileId;
///
/// let mut spm = SpmMemory::new(128);
/// spm.allocate(TileId::Input { c: 0, s: 0 }, 64, 5, &FlexerSpill)?;
/// spm.allocate(TileId::Input { c: 1, s: 0 }, 64, 0, &FlexerSpill)?;
/// // Both single-block runs fit with zero fragmentation; the dead
/// // tile (remain_uses = 0) has the lower disadvantage.
/// let victims = FlexerSpill.select_victims(&spm, 64).unwrap();
/// assert_eq!(victims, vec![1]);
/// # Ok::<(), flexer_spm::AllocError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlexerSpill;

impl SpillPolicy for FlexerSpill {
    fn select_victims(&self, memory: &SpmMemory, required: u64) -> Option<Vec<usize>> {
        let blocks = memory.blocks();
        let mut best: Option<Vec<usize>> = None;
        let mut min_frag = u64::MAX;
        let mut min_disadv = u64::MAX;
        let mut min_len = usize::MAX;

        for start in 0..blocks.len() {
            let mut run = Vec::new();
            let mut run_size = 0u64;
            let mut disadv = 0u64;
            for (offset, block) in blocks[start..].iter().enumerate() {
                if !block.is_spillable() {
                    break;
                }
                let index = start + offset;
                run_size += block.size();
                disadv += block.disadvantage();
                if !block.is_free() {
                    run.push(index);
                }
                if run_size >= required {
                    let frag = run_size - required;
                    let len = run.len();
                    let better = frag < min_frag
                        || (frag == min_frag && disadv < min_disadv)
                        || (frag == min_frag && disadv == min_disadv && len < min_len);
                    if better {
                        min_frag = frag;
                        min_disadv = disadv;
                        min_len = len;
                        best = Some(run.clone());
                    }
                    // Minimal-length run for this start found; longer
                    // runs from here only add fragmentation/disadvantage.
                    break;
                }
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "flexer"
    }
}

/// Table 2's *MemPolicy1*: first-fit spilling — traverse the memory in
/// address order and spill the first spillable block (or, failing
/// that, the first contiguous run) large enough to hold the requested
/// data. The paper shows this policy fragments the buffer (Figure
/// 5 (c)-1) and degrades performance (Figure 12).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FirstFitSpill;

impl SpillPolicy for FirstFitSpill {
    fn select_victims(&self, memory: &SpmMemory, required: u64) -> Option<Vec<usize>> {
        let blocks = memory.blocks();
        // The literal policy: the first single allocated block that is
        // big enough.
        for (i, block) in blocks.iter().enumerate() {
            if !block.is_free() && block.is_spillable() && block.size() >= required {
                return Some(vec![i]);
            }
        }
        // Fallback so the policy stays live when tiles are smaller than
        // the request: the first contiguous spillable run that fits.
        for start in 0..blocks.len() {
            let mut run = Vec::new();
            let mut run_size = 0u64;
            for (offset, block) in blocks[start..].iter().enumerate() {
                if !block.is_spillable() {
                    break;
                }
                run_size += block.size();
                if !block.is_free() {
                    run.push(start + offset);
                }
                if run_size >= required {
                    return Some(run);
                }
            }
        }
        None
    }

    fn name(&self) -> &'static str {
        "first-fit"
    }
}

/// Table 2's *MemPolicy2*: small-first spilling — repeatedly spill the
/// smallest spillable data block until a sufficient contiguous free
/// region exists.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmallestFirstSpill;

impl SpillPolicy for SmallestFirstSpill {
    fn select_victims(&self, memory: &SpmMemory, required: u64) -> Option<Vec<usize>> {
        let blocks = memory.blocks();
        // Simulated free-state of each block while we pick victims.
        let mut free: Vec<bool> = blocks.iter().map(|b| b.is_free()).collect();
        let mut victims = Vec::new();

        let feasible = |free: &[bool]| {
            let mut run = 0u64;
            for (i, b) in blocks.iter().enumerate() {
                if free[i] {
                    run += b.size();
                    if run >= required {
                        return true;
                    }
                } else {
                    run = 0;
                }
            }
            false
        };

        while !feasible(&free) {
            let smallest = blocks
                .iter()
                .enumerate()
                .filter(|(i, b)| !free[*i] && b.is_spillable())
                .min_by_key(|(i, b)| (b.size(), *i))
                .map(|(i, _)| i)?;
            free[smallest] = true;
            victims.push(smallest);
        }
        Some(victims)
    }

    fn name(&self) -> &'static str {
        "small-first"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_tiling::TileId;

    fn t(n: u32) -> TileId {
        TileId::Weight { k: n, c: 0 }
    }

    /// Builds a scratchpad with the given `(size, remain_uses)` tiles
    /// allocated in address order.
    fn spm_with(capacity: u64, tiles: &[(u64, u32)]) -> SpmMemory {
        let mut spm = SpmMemory::new(capacity);
        for (i, &(size, uses)) in tiles.iter().enumerate() {
            spm.allocate(t(i as u32), size, uses, &FlexerSpill).unwrap();
        }
        spm
    }

    #[test]
    fn flexer_minimizes_fragmentation_first() {
        // Blocks: 100 (1 use), 40 (0 uses). Request 100: the exact-fit
        // 100er wins over the 40er (which alone is infeasible anyway)
        // despite its higher disadvantage.
        let spm = spm_with(140, &[(100, 1), (40, 0)]);
        let v = FlexerSpill.select_victims(&spm, 100).unwrap();
        assert_eq!(v, vec![0]);
    }

    #[test]
    fn flexer_breaks_frag_ties_by_reuse() {
        // Two 64-byte blocks; the second is dead. Equal fragmentation,
        // so the dead one is spilled.
        let spm = spm_with(128, &[(64, 3), (64, 0)]);
        let v = FlexerSpill.select_victims(&spm, 64).unwrap();
        assert_eq!(v, vec![1]);
    }

    #[test]
    fn flexer_breaks_remaining_ties_by_block_count() {
        // Request 60 from [30 (1use), 30 (1use), 60 (1use)]... runs:
        // {0,1} frag 0 disadv 60 len 2; {2} frag 0 disadv 60 len 1.
        let spm = spm_with(120, &[(30, 1), (30, 1), (60, 1)]);
        let v = FlexerSpill.select_victims(&spm, 60).unwrap();
        assert_eq!(v, vec![2]);
    }

    #[test]
    fn flexer_uses_free_space_in_runs() {
        // [64 alloc (2 uses), 64 free, 64 alloc (2 uses), 64 alloc (2 uses)]
        // Request 128: run {0 + free} has disadv 128, run {2,3} has 256.
        let mut spm = spm_with(256, &[(64, 2), (64, 2), (64, 2), (64, 2)]);
        spm.evict(t(1));
        let v = FlexerSpill.select_victims(&spm, 128).unwrap();
        assert_eq!(v, vec![0]);
    }

    #[test]
    fn flexer_skips_pinned_runs() {
        let mut spm = spm_with(192, &[(64, 1), (64, 1), (64, 5)]);
        spm.pin(t(0));
        spm.pin(t(1));
        let v = FlexerSpill.select_victims(&spm, 64).unwrap();
        assert_eq!(v, vec![2]);
        spm.pin(t(2));
        assert!(FlexerSpill.select_victims(&spm, 64).is_none());
    }

    #[test]
    fn first_fit_takes_first_big_enough_block() {
        // [32, 100, 100]: request 64 -> first big-enough is index 1,
        // even though index 2 would be identical — first fit does not
        // look further.
        let spm = spm_with(232, &[(32, 1), (100, 1), (100, 1)]);
        let v = FirstFitSpill.select_victims(&spm, 64).unwrap();
        assert_eq!(v, vec![1]);
    }

    #[test]
    fn first_fit_falls_back_to_runs() {
        let spm = spm_with(96, &[(32, 1), (32, 1), (32, 1)]);
        let v = FirstFitSpill.select_victims(&spm, 64).unwrap();
        assert_eq!(v, vec![0, 1]);
    }

    #[test]
    fn first_fit_ignores_reuse_counts() {
        // Unlike FlexerSpill, first-fit spills a hot block when it
        // comes first.
        let spm = spm_with(128, &[(64, 9), (64, 0)]);
        let v = FirstFitSpill.select_victims(&spm, 64).unwrap();
        assert_eq!(v, vec![0]);
    }

    #[test]
    fn smallest_first_picks_small_victims() {
        // [16, 16, 96]: request 32 -> spilling the two 16s creates a
        // 32-byte contiguous hole (they are adjacent).
        let spm = spm_with(128, &[(16, 1), (16, 1), (96, 1)]);
        let v = SmallestFirstSpill.select_victims(&spm, 32).unwrap();
        assert_eq!(v, vec![0, 1]);
    }

    #[test]
    fn smallest_first_keeps_spilling_until_contiguous() {
        // [16, 96, 16]: the two 16s are NOT adjacent; after spilling
        // both, no 32-byte hole exists, so the 96er goes too.
        let spm = spm_with(128, &[(16, 1), (96, 1), (16, 1)]);
        let v = SmallestFirstSpill.select_victims(&spm, 32).unwrap();
        assert_eq!(v, vec![0, 2, 1]);
    }

    #[test]
    fn smallest_first_respects_pins() {
        let mut spm = spm_with(128, &[(64, 1), (64, 1)]);
        spm.pin(t(0));
        spm.pin(t(1));
        assert!(SmallestFirstSpill.select_victims(&spm, 64).is_none());
    }

    #[test]
    fn policies_satisfy_allocate_postcondition() {
        for policy in [
            &FlexerSpill as &dyn SpillPolicy,
            &FirstFitSpill,
            &SmallestFirstSpill,
        ] {
            let mut spm = spm_with(256, &[(64, 1), (32, 2), (96, 1), (64, 3)]);
            let outcome = spm.allocate(t(99), 120, 1, policy).unwrap();
            assert_eq!(outcome.method, crate::AllocMethod::AfterSpill, "{policy:?}");
            assert!(spm.contains(t(99)));
            spm.assert_invariants();
        }
    }

    #[test]
    fn policy_names() {
        assert_eq!(FlexerSpill.name(), "flexer");
        assert_eq!(FirstFitSpill.name(), "first-fit");
        assert_eq!(SmallestFirstSpill.name(), "small-first");
    }
}
