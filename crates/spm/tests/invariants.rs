//! Property-based tests of the scratchpad block map.
//!
//! Random operation sequences must preserve the structural invariants
//! (full coverage, no gaps/overlaps, coalesced frees, unique tiles)
//! and the allocation postconditions.

use flexer_spm::{
    AllocError, AllocMethod, FirstFitSpill, FlexerSpill, SmallestFirstSpill, SpillPolicy, SpmMemory,
};
use flexer_tiling::TileId;
use proptest::prelude::*;

/// An abstract scratchpad operation for random-sequence testing.
#[derive(Debug, Clone)]
enum Op {
    Alloc { tile: u32, size: u64, uses: u32 },
    Evict { tile: u32 },
    Pin { tile: u32 },
    UnpinAll,
    Decrement { tile: u32 },
    SetDirty { tile: u32, dirty: bool },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..24, 1u64..200, 0u32..5).prop_map(|(tile, size, uses)| Op::Alloc {
            tile,
            size,
            uses
        }),
        (0u32..24).prop_map(|tile| Op::Evict { tile }),
        (0u32..24).prop_map(|tile| Op::Pin { tile }),
        Just(Op::UnpinAll),
        (0u32..24).prop_map(|tile| Op::Decrement { tile }),
        (0u32..24, any::<bool>()).prop_map(|(tile, dirty)| Op::SetDirty { tile, dirty }),
    ]
}

fn tile(n: u32) -> TileId {
    TileId::Output { k: n, s: 0 }
}

fn run_sequence(policy: &dyn SpillPolicy, capacity: u64, ops: &[Op]) {
    let mut spm = SpmMemory::new(capacity);
    let mut pinned_bytes = 0u64;
    for op in ops {
        match op {
            Op::Alloc {
                tile: t,
                size,
                uses,
            } => {
                let was_resident = spm.contains(tile(*t));
                match spm.allocate(tile(*t), *size, *uses, policy) {
                    Ok(outcome) => {
                        assert!(spm.contains(tile(*t)));
                        if was_resident {
                            assert_eq!(outcome.method, AllocMethod::AlreadyResident);
                            assert!(outcome.evictions.is_empty());
                        } else {
                            // Evicted tiles are gone; the new tile is
                            // clean and unpinned.
                            for ev in &outcome.evictions {
                                assert!(!spm.contains(ev.tile));
                            }
                            let data = spm.tile_data(tile(*t)).unwrap();
                            assert!(!data.dirty);
                            assert!(!data.pinned);
                            assert_eq!(data.remain_uses, *uses);
                        }
                    }
                    Err(AllocError::TileTooLarge { requested, .. }) => {
                        assert!(requested > capacity);
                    }
                    Err(AllocError::InsufficientMemory { .. }) => {
                        // Plausible whenever pins exist; never when the
                        // whole buffer is unpinned and big enough.
                        assert!(
                            pinned_bytes > 0,
                            "unpinned memory of {capacity} failed a {size}-byte request"
                        );
                    }
                    Err(AllocError::ZeroSize) => unreachable!("sizes start at 1"),
                }
            }
            Op::Evict { tile: t } => {
                if spm.tile_data(tile(*t)).is_some_and(|d| d.pinned) {
                    // Pinned tiles must not be evicted by callers.
                } else {
                    let was = spm.contains(tile(*t));
                    let ev = spm.evict(tile(*t));
                    assert_eq!(ev.is_some(), was);
                    assert!(!spm.contains(tile(*t)));
                }
            }
            Op::Pin { tile: t } => {
                if spm.pin(tile(*t)) {
                    pinned_bytes += 1;
                }
            }
            Op::UnpinAll => {
                spm.unpin_all();
                pinned_bytes = 0;
            }
            Op::Decrement { tile: t } => {
                spm.decrement_uses(tile(*t));
            }
            Op::SetDirty { tile: t, dirty } => {
                spm.set_dirty(tile(*t), *dirty);
            }
        }
        spm.assert_invariants();
        // Accounting is consistent.
        assert_eq!(spm.used_bytes() + spm.free_bytes(), spm.capacity());
    }
}

/// Applies `ops` without postcondition checks (shared by the
/// transactional differential tests). Mirrors the legality guards of
/// `run_sequence`: pinned tiles are never evicted by the caller.
fn apply_ops(policy: &dyn SpillPolicy, spm: &mut SpmMemory, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Alloc {
                tile: t,
                size,
                uses,
            } => {
                let _ = spm.allocate(tile(*t), *size, *uses, policy);
            }
            Op::Evict { tile: t } => {
                if !spm.tile_data(tile(*t)).is_some_and(|d| d.pinned) {
                    spm.evict(tile(*t));
                }
            }
            Op::Pin { tile: t } => {
                spm.pin(tile(*t));
            }
            Op::UnpinAll => spm.unpin_all(),
            Op::Decrement { tile: t } => {
                spm.decrement_uses(tile(*t));
            }
            Op::SetDirty { tile: t, dirty } => {
                spm.set_dirty(tile(*t), *dirty);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn flexer_policy_preserves_invariants(
        capacity in 64u64..1024,
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        run_sequence(&FlexerSpill, capacity, &ops);
    }

    #[test]
    fn first_fit_policy_preserves_invariants(
        capacity in 64u64..1024,
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        run_sequence(&FirstFitSpill, capacity, &ops);
    }

    #[test]
    fn smallest_first_policy_preserves_invariants(
        capacity in 64u64..1024,
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        run_sequence(&SmallestFirstSpill, capacity, &ops);
    }

    /// Unpinned allocations of feasible sizes never fail, for every
    /// policy: the spill machinery can always produce a hole.
    #[test]
    fn feasible_unpinned_allocations_always_succeed(
        sizes in prop::collection::vec(1u64..128, 1..40),
    ) {
        for policy in [
            &FlexerSpill as &dyn SpillPolicy,
            &FirstFitSpill,
            &SmallestFirstSpill,
        ] {
            let mut spm = SpmMemory::new(256);
            for (i, &size) in sizes.iter().enumerate() {
                spm.allocate(tile(i as u32), size, 1, policy).unwrap();
                spm.assert_invariants();
            }
        }
    }

    /// Transactional-planning differential: arbitrary mutations made
    /// inside a checkpoint are fully reverted by rollback, leaving a
    /// state equal to a pre-mutation deep clone — under every spill
    /// policy. This is the oracle guaranteeing the scheduler's
    /// rollback-based candidate evaluation matches the old
    /// clone-per-candidate behaviour.
    #[test]
    fn rollback_matches_clone_oracle(
        capacity in 64u64..1024,
        setup in prop::collection::vec(op_strategy(), 0..25),
        txn in prop::collection::vec(op_strategy(), 1..40),
        policy_idx in 0usize..3,
    ) {
        let policies: [&dyn SpillPolicy; 3] =
            [&FlexerSpill, &FirstFitSpill, &SmallestFirstSpill];
        let policy = policies[policy_idx];
        let mut spm = SpmMemory::new(capacity);
        apply_ops(policy, &mut spm, &setup);
        spm.assert_invariants();

        let oracle = spm.clone();
        let token = spm.checkpoint();
        apply_ops(policy, &mut spm, &txn);
        spm.assert_invariants();
        let _ = spm.rollback(token);

        spm.assert_invariants();
        prop_assert_eq!(&spm, &oracle);
        prop_assert_eq!(spm.journal_len(), 0);
        prop_assert!(!spm.in_transaction());
    }

    /// Committing a transaction leaves exactly the state reached by
    /// applying the same operations with no transaction at all.
    #[test]
    fn commit_matches_untracked_execution(
        capacity in 64u64..1024,
        ops in prop::collection::vec(op_strategy(), 1..40),
        policy_idx in 0usize..3,
    ) {
        let policies: [&dyn SpillPolicy; 3] =
            [&FlexerSpill, &FirstFitSpill, &SmallestFirstSpill];
        let policy = policies[policy_idx];

        let mut tracked = SpmMemory::new(capacity);
        let token = tracked.checkpoint();
        apply_ops(policy, &mut tracked, &ops);
        tracked.commit(token);

        let mut plain = SpmMemory::new(capacity);
        apply_ops(policy, &mut plain, &ops);

        prop_assert_eq!(&tracked, &plain);
        prop_assert_eq!(tracked.journal_len(), 0);
    }

    /// The Flexer policy's fragmentation after a forced spill never
    /// exceeds first-fit's on the same state (its primary criterion is
    /// minimal fragmentation).
    #[test]
    fn flexer_spill_fragments_no_worse_than_first_fit(
        sizes in prop::collection::vec(8u64..96, 4..10),
        request in 64u64..200,
    ) {
        let build = || {
            let mut spm = SpmMemory::new(512);
            for (i, &size) in sizes.iter().enumerate() {
                spm.allocate(tile(i as u32), size, (i % 4) as u32, &FlexerSpill).unwrap();
            }
            spm
        };
        // Only compare when both policies actually have to spill.
        let mut a = build();
        let mut b = build();
        if a.free_bytes() >= request {
            return Ok(());
        }
        let ra = a.allocate(tile(100), request, 1, &FlexerSpill);
        let rb = b.allocate(tile(100), request, 1, &FirstFitSpill);
        if let (Ok(oa), Ok(ob)) = (ra, rb) {
            let spilled_a: u64 = oa.evictions.iter().map(|e| e.bytes).sum();
            let spilled_b: u64 = ob.evictions.iter().map(|e| e.bytes).sum();
            // Fragmentation caused = bytes freed beyond the request
            // (counting previously-free bytes in the hole for both).
            prop_assert!(spilled_a <= spilled_b + request,
                "flexer spilled {spilled_a} vs first-fit {spilled_b} for {request}");
        }
    }
}
