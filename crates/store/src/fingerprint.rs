//! Content addresses: a stable 128-bit fingerprint of one search's
//! identity.

use flexer_arch::ArchConfig;
use flexer_model::ConvLayer;
use flexer_sched::wire::canonical_key_bytes;
use flexer_sched::{SchedulerKind, SearchOptions};
use std::fmt;

/// Magic bytes identifying a store entry (and salting the
/// fingerprint).
pub(crate) const MAGIC: [u8; 4] = *b"FXS1";

/// The on-disk format version. Bump it whenever the entry layout, the
/// result wire codec, or the canonical key encoding changes: the
/// version participates in the fingerprint, so old entries become
/// unreachable instead of being misdecoded. The store crate's golden
/// fingerprint test pins the current value's output — drift forces a
/// deliberate bump here.
pub const FORMAT_VERSION: u32 = 4;

/// A 128-bit content address of one (layer shape, arch, options,
/// scheduler kind, format version) tuple.
///
/// Rendered as 32 lowercase hex digits — the store entry's file stem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(u128);

impl Fingerprint {
    /// The 32-hex-digit rendering used as the entry file stem.
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// The raw 128-bit value.
    #[must_use]
    pub const fn value(&self) -> u128 {
        self.0
    }

    /// Parses the 32-hex-digit rendering produced by
    /// [`Fingerprint::hex`]. Returns `None` for anything else — wrong
    /// length, uppercase, or non-hex bytes — so wire input can be
    /// validated strictly before it names a file on disk.
    #[must_use]
    pub fn from_hex(hex: &str) -> Option<Self> {
        if hex.len() != 32
            || !hex
                .bytes()
                .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
        {
            return None;
        }
        u128::from_str_radix(hex, 16).ok().map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

fn fnv1a_128(chunks: &[&[u8]]) -> u128 {
    let mut h = FNV128_OFFSET;
    for chunk in chunks {
        for &b in *chunk {
            h ^= u128::from(b);
            h = h.wrapping_mul(FNV128_PRIME);
        }
    }
    h
}

/// Fingerprints pre-computed canonical key bytes (see
/// [`flexer_sched::wire::canonical_key_bytes`]). The store magic and
/// [`FORMAT_VERSION`] are mixed in first, so a format bump re-keys
/// every entry.
#[must_use]
pub fn fingerprint_of_key_bytes(key: &[u8]) -> Fingerprint {
    Fingerprint(fnv1a_128(&[&MAGIC, &FORMAT_VERSION.to_le_bytes(), key]))
}

/// The content address of one search: layer *shape* (the name is
/// irrelevant), architecture, winner-relevant options and scheduler
/// kind, salted with the store format version.
#[must_use]
pub fn fingerprint(
    layer: &ConvLayer,
    arch: &ArchConfig,
    opts: &SearchOptions,
    kind: SchedulerKind,
) -> Fingerprint {
    fingerprint_of_key_bytes(&canonical_key_bytes(layer, arch, opts, kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_arch::ArchPreset;

    #[test]
    fn hex_is_32_lowercase_digits() {
        let fp = fingerprint_of_key_bytes(b"abc");
        let hex = fp.hex();
        assert_eq!(hex.len(), 32);
        assert!(hex
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
        assert_eq!(fp.to_string(), hex);
    }

    #[test]
    fn from_hex_round_trips_and_rejects_garbage() {
        let fp = fingerprint_of_key_bytes(b"round-trip");
        assert_eq!(Fingerprint::from_hex(&fp.hex()), Some(fp));
        assert_eq!(Fingerprint::from_hex(""), None);
        assert_eq!(Fingerprint::from_hex("abc"), None);
        assert_eq!(
            Fingerprint::from_hex(&fp.hex().to_uppercase()),
            None,
            "only the canonical lowercase rendering is an address"
        );
        let mut long = fp.hex();
        long.push('0');
        assert_eq!(Fingerprint::from_hex(&long), None);
        let mut bad = fp.hex();
        bad.replace_range(0..1, "g");
        assert_eq!(Fingerprint::from_hex(&bad), None);
    }

    #[test]
    fn distinct_searches_get_distinct_addresses() {
        let layer = ConvLayer::new("a", 32, 14, 14, 32).unwrap();
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let opts = SearchOptions::quick();
        let base = fingerprint(&layer, &arch, &opts, SchedulerKind::Ooo);
        assert_ne!(
            base,
            fingerprint(&layer, &arch, &opts, SchedulerKind::Static)
        );
        let other_arch = ArchConfig::preset(ArchPreset::Arch5);
        assert_ne!(
            base,
            fingerprint(&layer, &other_arch, &opts, SchedulerKind::Ooo)
        );
        let renamed = layer.clone().with_name("b");
        assert_eq!(
            base,
            fingerprint(&renamed, &arch, &opts, SchedulerKind::Ooo),
            "names are not part of the address"
        );
    }
}
