//! Persistent, content-addressed schedule cache.
//!
//! Flexer's value is a one-time, expensive search per (layer, arch,
//! options); the in-memory [`MemoCache`](flexer_sched::MemoCache)
//! amortizes it within a process but dies with the driver. This crate
//! is the cross-process memo: a directory of schedule entries keyed by
//! a stable [`Fingerprint`] of the layer shape, the architecture, the
//! winner-relevant search options, the scheduler kind and the store
//! format version.
//!
//! Design points (DESIGN.md §12):
//!
//! * **Content-addressed** — the entry file name *is* the fingerprint,
//!   32 lowercase hex digits of an FNV-1a 128-bit hash over the
//!   canonical key bytes ([`flexer_sched::wire::canonical_key_bytes`])
//!   prefixed with the store magic and format version. Changing any
//!   winner-relevant knob, or the format version, changes the address;
//!   stale entries are simply never found.
//! * **Crash-safe** — entries are written to a temp file in the store
//!   directory, fsynced, then renamed into place. A torn write can
//!   leave a temp file (ignored and reaped) but never a half-visible
//!   entry.
//! * **Self-validating** — every entry carries a header with magic,
//!   format version, payload length and an FNV-1a 64 checksum of the
//!   payload. Anything that fails validation or decoding is a *typed*
//!   corrupt-entry miss ([`Lookup::Corrupt`]): the entry is deleted,
//!   the `store_corrupt` counter bumps, and the caller re-schedules
//!   and repairs. Corruption never panics and never serves a wrong
//!   schedule.
//! * **Size-bounded** — when the store grows past its byte capacity, a
//!   least-recently-used eviction pass deletes old entries (recency is
//!   in-memory per process, with file modification time as the
//!   cross-process fallback).
//! * **Accounted** — hit/miss/evict/corrupt counters merge into
//!   [`SearchStats`](flexer_sched::SearchStats) via
//!   [`ScheduleStore::stats`], so warm starts are visible in every
//!   stats sink the repo already has.
//!
//! # Examples
//!
//! ```
//! use flexer_arch::{ArchConfig, ArchPreset};
//! use flexer_model::ConvLayer;
//! use flexer_sched::{search_layer, SchedulerKind, SearchOptions};
//! use flexer_store::{fingerprint, Lookup, ScheduleStore};
//!
//! let dir = std::env::temp_dir().join(format!("fxs-doc-{}", std::process::id()));
//! let store = ScheduleStore::open(&dir)?;
//! let layer = ConvLayer::new("conv", 32, 14, 14, 32)?;
//! let arch = ArchConfig::preset(ArchPreset::Arch1);
//! let opts = SearchOptions::quick();
//! let fp = fingerprint(&layer, &arch, &opts, SchedulerKind::Ooo);
//!
//! assert!(matches!(store.get(fp), Lookup::Miss));
//! let result = search_layer(&layer, &arch, &opts)?;
//! store.put(fp, &result)?;
//! let Lookup::Hit(warm) = store.get(fp) else { panic!("expected hit") };
//! assert_eq!(warm.schedule, result.schedule);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fingerprint;
mod store;

pub use fingerprint::{fingerprint, fingerprint_of_key_bytes, Fingerprint, FORMAT_VERSION};
pub use store::{
    CorruptKind, Ingest, Lookup, ManifestEntry, ScheduleStore, StoreCounters,
    DEFAULT_CAPACITY_BYTES,
};
