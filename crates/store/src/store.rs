//! The on-disk store: atomic entry files, validation, LRU eviction.

use crate::fingerprint::{Fingerprint, FORMAT_VERSION, MAGIC};
use flexer_sched::wire::{decode_layer_result, encode_layer_result};
use flexer_sched::{LayerSearchResult, SearchStats};
use flexer_sim::wire::WireError;
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::UNIX_EPOCH;

/// Entry file extension.
const EXT: &str = "fxs";
/// Header bytes: magic (4) + version (4) + payload length (8) +
/// checksum (8).
const HEADER_LEN: usize = 24;

/// Default byte capacity of a store: 256 MiB — thousands of layer
/// entries (a quick-options entry is a few KiB).
pub const DEFAULT_CAPACITY_BYTES: u64 = 256 * 1024 * 1024;

/// Why a store entry was rejected as corrupt. Every variant is a
/// *miss with a reason*: the entry is deleted and the caller
/// re-schedules, repairing the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorruptKind {
    /// The file is shorter than the fixed header.
    TruncatedHeader,
    /// The magic bytes are not `FXS1`.
    BadMagic,
    /// The header's format version is not [`FORMAT_VERSION`]. Should
    /// be unreachable — the version participates in the address — so
    /// it indicates a damaged or foreign file.
    VersionMismatch {
        /// The version found in the header.
        found: u32,
    },
    /// The payload is not as long as the header claims (torn write).
    LengthMismatch {
        /// Length claimed by the header.
        header: u64,
        /// Length actually present.
        actual: u64,
    },
    /// The payload checksum does not match the header (bit rot or a
    /// torn write that preserved the length).
    ChecksumMismatch {
        /// Checksum recorded in the header.
        header: u64,
        /// Checksum of the payload as read.
        actual: u64,
    },
    /// The payload passed the checksum but failed to decode — a store
    /// written by an incompatible build that forgot to bump
    /// [`FORMAT_VERSION`].
    Decode(WireError),
}

impl fmt::Display for CorruptKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptKind::TruncatedHeader => write!(f, "entry shorter than its header"),
            CorruptKind::BadMagic => write!(f, "bad magic bytes"),
            CorruptKind::VersionMismatch { found } => {
                write!(f, "format version {found} (expected {FORMAT_VERSION})")
            }
            CorruptKind::LengthMismatch { header, actual } => {
                write!(f, "payload length {actual} (header claims {header})")
            }
            CorruptKind::ChecksumMismatch { header, actual } => {
                write!(f, "checksum {actual:#x} (header claims {header:#x})")
            }
            CorruptKind::Decode(e) => write!(f, "payload decode failed: {e}"),
        }
    }
}

/// Outcome of a [`ScheduleStore::get`].
#[derive(Debug)]
pub enum Lookup {
    /// The entry was found, validated and decoded.
    Hit(Box<LayerSearchResult>),
    /// No entry under this fingerprint.
    Miss,
    /// An entry existed but was torn/corrupt; it has been deleted and
    /// the lookup counts as a miss.
    Corrupt(CorruptKind),
}

/// Snapshot of a store's lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Lookups answered from disk.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Entries deleted by the LRU capacity pass.
    pub evictions: u64,
    /// Entries rejected as torn/corrupt (also counted as misses by
    /// callers; kept separate here).
    pub corrupt: u64,
}

/// One row of a [`ScheduleStore::manifest`]: a validated entry's
/// address plus enough header material to diff stores without moving
/// payloads. Two stores hold the same entry iff the fingerprint,
/// length and checksum all agree (the payload encoding is canonical,
/// so equal checksums over equal lengths mean equal bytes in
/// practice).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ManifestEntry {
    /// The entry's content address.
    pub fingerprint: Fingerprint,
    /// Total on-disk size of the entry file (header + payload).
    pub len: u64,
    /// The payload checksum recorded in (and re-verified against) the
    /// header.
    pub checksum: u64,
}

/// Outcome of a [`ScheduleStore::ingest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ingest {
    /// The entry was validated and written.
    Stored,
    /// A valid entry already exists under this address; nothing
    /// changed.
    Exists,
    /// The bytes failed validation and were discarded (counted under
    /// the corrupt counter). The local store is untouched.
    Rejected(CorruptKind),
}

/// In-memory recency: fingerprint hex → monotone sequence number.
/// Files unknown to the map (written by an earlier process) fall back
/// to their modification time, ordered before every in-process touch.
#[derive(Debug, Default)]
struct Recency {
    next: u64,
    seq: HashMap<String, u64>,
}

/// A content-addressed, size-bounded, crash-safe schedule cache rooted
/// at one directory. See the crate docs for the design.
///
/// All methods take `&self`; the store is safe to share across the
/// worker threads of a scheduling service.
#[derive(Debug)]
pub struct ScheduleStore {
    dir: PathBuf,
    capacity_bytes: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    corrupt: AtomicU64,
    recency: Mutex<Recency>,
}

fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl ScheduleStore {
    /// Opens (creating if needed) a store at `dir` with the default
    /// capacity.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the directory.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        Self::with_capacity(dir, DEFAULT_CAPACITY_BYTES)
    }

    /// Opens (creating if needed) a store at `dir` bounded to
    /// `capacity_bytes` of entry data. `0` means unbounded.
    ///
    /// Leftover temp files from a crashed writer are reaped on open.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the directory.
    pub fn with_capacity(dir: impl AsRef<Path>, capacity_bytes: u64) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        // Reap temp files a crashed writer may have left behind.
        for entry in fs::read_dir(&dir)?.flatten() {
            let name = entry.file_name();
            if name.to_string_lossy().starts_with(".tmp-") {
                let _ = fs::remove_file(entry.path());
            }
        }
        Ok(Self {
            dir,
            capacity_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            recency: Mutex::new(Recency::default()),
        })
    }

    /// The store's root directory.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Lifetime counters of this handle.
    #[must_use]
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
        }
    }

    /// The counters as a [`SearchStats`] delta (only the four store
    /// fields are nonzero), ready to merge into any stats sink.
    #[must_use]
    pub fn stats(&self) -> SearchStats {
        let c = self.counters();
        SearchStats {
            store_hits: c.hits,
            store_misses: c.misses,
            store_evictions: c.evictions,
            store_corrupt: c.corrupt,
            ..SearchStats::default()
        }
    }

    /// Number of entries currently on disk.
    ///
    /// # Errors
    ///
    /// Any I/O error listing the directory.
    pub fn len(&self) -> io::Result<usize> {
        Ok(self.entries()?.len())
    }

    /// Whether the store holds no entries.
    ///
    /// # Errors
    ///
    /// Any I/O error listing the directory.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.entries()?.is_empty())
    }

    /// Whether an entry exists under `fp` (without validating it).
    #[must_use]
    pub fn contains(&self, fp: Fingerprint) -> bool {
        self.entry_path(fp).exists()
    }

    /// Looks up `fp`, validating and decoding the entry.
    ///
    /// Counts a hit, a miss, or a corrupt entry (corrupt entries are
    /// removed so the next `put` repairs the store). Never panics on
    /// damaged input and never returns a result whose bytes did not
    /// checksum.
    ///
    /// The corrupt path is safe under concurrent readers and writers
    /// sharing the directory: the damaged file is *renamed aside* (an
    /// atomic move to a `.tmp-` quarantine name) and re-validated
    /// there before being discarded. A plain `remove_file` would race
    /// a concurrent repair — reader A caches corrupt bytes, reader B
    /// deletes, re-searches and atomically renames a healthy entry
    /// into place, then A's delete destroys B's repair. With the
    /// quarantine protocol, whatever the rename captured is inspected:
    /// if it turned out healthy (A stole a fresh repair), it is moved
    /// straight back and served as a hit; only bytes that are *still*
    /// corrupt are dropped.
    pub fn get(&self, fp: Fingerprint) -> Lookup {
        let path = self.entry_path(fp);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                // NotFound and transient read errors are both plain
                // misses: nothing usable exists under this address.
                self.misses.fetch_add(1, Ordering::Relaxed);
                return Lookup::Miss;
            }
        };
        match parse_entry(&bytes) {
            Ok(result) => {
                self.touch(fp);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Lookup::Hit(Box::new(result))
            }
            Err(kind) => match self.quarantine_corrupt(fp, &path) {
                Some(repaired) => {
                    // Between our read and the quarantine rename a
                    // concurrent repair replaced the entry; we captured
                    // (and restored) the healthy replacement.
                    self.touch(fp);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Lookup::Hit(repaired)
                }
                None => {
                    self.recency
                        .lock()
                        .expect("recency lock")
                        .seq
                        .remove(&fp.hex());
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                    Lookup::Corrupt(kind)
                }
            },
        }
    }

    /// Atomically moves the entry at `path` to a unique quarantine
    /// name and re-validates the captured bytes. Returns the decoded
    /// result — restored into place — when the captured file was
    /// healthy (we raced a concurrent repair), `None` when it was
    /// genuinely corrupt (quarantine deleted) or already gone.
    fn quarantine_corrupt(&self, fp: Fingerprint, path: &Path) -> Option<Box<LayerSearchResult>> {
        static QUARANTINE_SEQ: AtomicU64 = AtomicU64::new(0);
        // The ".tmp-" prefix keeps leftovers (a crash between rename
        // and the verdict below) reapable by the next open().
        let quarantine = self.dir.join(format!(
            ".tmp-q-{}-{}-{}",
            fp.hex(),
            std::process::id(),
            QUARANTINE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        if fs::rename(path, &quarantine).is_err() {
            // Already removed or quarantined by a concurrent reader.
            return None;
        }
        let captured = fs::read(&quarantine).ok();
        match captured.and_then(|b| parse_entry(&b).ok()) {
            Some(result) => {
                // We captured a healthy entry: put it back. If a yet
                // newer repair landed meanwhile, rename replaces it
                // with an equally valid copy; on failure the decoded
                // result is still served and a later put re-repairs.
                if fs::rename(&quarantine, path).is_err() {
                    let _ = fs::remove_file(&quarantine);
                }
                Some(Box::new(result))
            }
            None => {
                let _ = fs::remove_file(&quarantine);
                None
            }
        }
    }

    /// Inserts `result` under `fp` if no entry exists yet; returns
    /// whether a new entry was written.
    ///
    /// The stored copy zeroes the four store counters in
    /// `result.stats` — they describe *this* process's store traffic,
    /// not the search — so a warm-started result is byte-identical to
    /// the cold one. The write is atomic (temp file + fsync + rename)
    /// and is followed by an LRU eviction pass when the store exceeds
    /// its capacity.
    ///
    /// # Errors
    ///
    /// Any I/O error writing the entry.
    pub fn put(&self, fp: Fingerprint, result: &LayerSearchResult) -> io::Result<bool> {
        let path = self.entry_path(fp);
        if path.exists() {
            self.touch(fp);
            return Ok(false);
        }
        let mut stored = result.clone();
        stored.stats.store_hits = 0;
        stored.stats.store_misses = 0;
        stored.stats.store_evictions = 0;
        stored.stats.store_corrupt = 0;
        let payload = encode_layer_result(&stored);

        let mut file_bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        file_bytes.extend_from_slice(&MAGIC);
        file_bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        file_bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        file_bytes.extend_from_slice(&fnv1a_64(&payload).to_le_bytes());
        file_bytes.extend_from_slice(&payload);

        let tmp = self
            .dir
            .join(format!(".tmp-{}-{}", fp.hex(), std::process::id()));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&file_bytes)?;
            f.sync_all()?;
        }
        if let Err(e) = fs::rename(&tmp, &path) {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        self.touch(fp);
        self.evict_to_capacity()?;
        Ok(true)
    }

    /// A validated snapshot of the store's contents, sorted by
    /// fingerprint, for replication and anti-entropy diffing.
    ///
    /// Only healthy entries are advertised: quarantine files
    /// (`.tmp-q-*`) and in-flight temp writes (`.tmp-*`) are skipped
    /// by name, and any `.fxs` file whose header, checksum or payload
    /// fails validation at snapshot time — e.g. an entry being
    /// corrupted concurrently — is silently omitted rather than
    /// offered to peers. The corrupt entry is left in place for the
    /// normal [`ScheduleStore::get`] quarantine path to repair; a
    /// manifest pass is read-only.
    ///
    /// # Errors
    ///
    /// Any I/O error listing the directory.
    pub fn manifest(&self) -> io::Result<Vec<ManifestEntry>> {
        let mut out = Vec::new();
        for (stem, path, _, _) in self.entries()? {
            // Defense in depth: entries() filters on the `.fxs`
            // extension, which no temp/quarantine name carries, but a
            // manifest must never advertise an in-flight or
            // quarantined file even if that invariant drifts.
            if stem.starts_with(".tmp-") {
                continue;
            }
            let Some(fp) = Fingerprint::from_hex(&stem) else {
                continue;
            };
            let Ok(bytes) = fs::read(&path) else { continue };
            if parse_entry(&bytes).is_err() {
                continue;
            }
            let checksum = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
            out.push(ManifestEntry {
                fingerprint: fp,
                len: bytes.len() as u64,
                checksum,
            });
        }
        out.sort();
        Ok(out)
    }

    /// The full wire bytes (header + payload) of the entry under `fp`,
    /// re-validated before export so damage is never replicated.
    /// Returns `None` when the entry is missing or fails validation.
    ///
    /// # Errors
    ///
    /// This method never returns `Err` today; the `io::Result` wrapper
    /// keeps room for directory-level failures.
    pub fn export(&self, fp: Fingerprint) -> io::Result<Option<Vec<u8>>> {
        let Ok(bytes) = fs::read(self.entry_path(fp)) else {
            return Ok(None);
        };
        if parse_entry(&bytes).is_err() {
            return Ok(None);
        }
        Ok(Some(bytes))
    }

    /// Ingests entry-file bytes exported from a peer store under `fp`.
    ///
    /// The bytes are re-validated through the exact pipeline a disk
    /// read uses — magic, version, length, checksum, payload decode —
    /// so a corrupt or malicious replica can never plant a damaged
    /// entry: invalid bytes are rejected (and counted under the
    /// corrupt counter) without touching the local store. Valid bytes
    /// are re-encoded through [`ScheduleStore::put`], which re-zeroes
    /// the stats' store counters and preserves the atomic
    /// write-then-rename and LRU eviction discipline. Because the
    /// payload encoding is canonical, the re-encoded file is
    /// byte-identical to a healthy peer's.
    ///
    /// Ingest does not count a hit or a miss: replication traffic must
    /// not skew serving counters.
    ///
    /// # Errors
    ///
    /// Any I/O error writing the entry.
    pub fn ingest(&self, fp: Fingerprint, bytes: &[u8]) -> io::Result<Ingest> {
        match parse_entry(bytes) {
            Ok(result) => Ok(if self.put(fp, &result)? {
                Ingest::Stored
            } else {
                Ingest::Exists
            }),
            Err(kind) => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                Ok(Ingest::Rejected(kind))
            }
        }
    }

    /// Durably flushes the store: fsyncs the directory so completed
    /// renames survive power loss. Entry contents are already synced
    /// by [`ScheduleStore::put`].
    ///
    /// # Errors
    ///
    /// Any I/O error syncing the directory.
    pub fn flush(&self) -> io::Result<()> {
        fs::File::open(&self.dir)?.sync_all()
    }

    fn entry_path(&self, fp: Fingerprint) -> PathBuf {
        self.dir.join(format!("{}.{EXT}", fp.hex()))
    }

    fn touch(&self, fp: Fingerprint) {
        let mut r = self.recency.lock().expect("recency lock");
        r.next += 1;
        let seq = r.next;
        r.seq.insert(fp.hex(), seq);
    }

    /// `(stem, path, size, mtime nanos)` of every entry file.
    fn entries(&self) -> io::Result<Vec<(String, PathBuf, u64, u128)>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)?.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(EXT) {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()).map(str::to_owned) else {
                continue;
            };
            let Ok(meta) = entry.metadata() else { continue };
            let mtime = meta
                .modified()
                .ok()
                .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
                .map_or(0, |d| d.as_nanos());
            out.push((stem, path, meta.len(), mtime));
        }
        Ok(out)
    }

    /// Deletes least-recently-used entries until the store fits its
    /// capacity. Entries this process never touched order before all
    /// touched ones, oldest modification time first.
    fn evict_to_capacity(&self) -> io::Result<()> {
        if self.capacity_bytes == 0 {
            return Ok(());
        }
        let mut entries = self.entries()?;
        let mut total: u64 = entries.iter().map(|(_, _, size, _)| size).sum();
        if total <= self.capacity_bytes {
            return Ok(());
        }
        let recency = self.recency.lock().expect("recency lock");
        // Sort key: known entries by in-process recency, unknown ones
        // before them by mtime.
        entries.sort_by_key(|(stem, _, _, mtime)| match recency.seq.get(stem) {
            Some(&seq) => (1u8, u128::from(seq)),
            None => (0u8, *mtime),
        });
        drop(recency);
        for (stem, path, size, _) in entries {
            if total <= self.capacity_bytes {
                break;
            }
            if fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(size);
                self.recency.lock().expect("recency lock").seq.remove(&stem);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }
}

/// Validates and decodes one entry file.
fn parse_entry(bytes: &[u8]) -> Result<LayerSearchResult, CorruptKind> {
    if bytes.len() < HEADER_LEN {
        return Err(CorruptKind::TruncatedHeader);
    }
    if bytes[0..4] != MAGIC {
        return Err(CorruptKind::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(CorruptKind::VersionMismatch { found: version });
    }
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let checksum = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let payload = &bytes[HEADER_LEN..];
    if payload.len() as u64 != payload_len {
        return Err(CorruptKind::LengthMismatch {
            header: payload_len,
            actual: payload.len() as u64,
        });
    }
    let actual = fnv1a_64(payload);
    if actual != checksum {
        return Err(CorruptKind::ChecksumMismatch {
            header: checksum,
            actual,
        });
    }
    decode_layer_result(payload).map_err(CorruptKind::Decode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint_of_key_bytes;
    use flexer_arch::{ArchConfig, ArchPreset};
    use flexer_model::ConvLayer;
    use flexer_sched::{search_layer, SearchOptions};
    use std::sync::atomic::AtomicU32;

    static DIR_ID: AtomicU32 = AtomicU32::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "fxs-test-{tag}-{}-{}",
            std::process::id(),
            DIR_ID.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sample_result() -> LayerSearchResult {
        let layer = ConvLayer::new("t", 32, 14, 14, 32).unwrap();
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let mut opts = SearchOptions::quick();
        opts.threads = 1;
        search_layer(&layer, &arch, &opts).unwrap()
    }

    #[test]
    fn put_get_round_trip() {
        let dir = scratch_dir("roundtrip");
        let store = ScheduleStore::open(&dir).unwrap();
        let fp = fingerprint_of_key_bytes(b"k1");
        assert!(matches!(store.get(fp), Lookup::Miss));
        let result = sample_result();
        assert!(store.put(fp, &result).unwrap());
        assert!(store.contains(fp));
        assert_eq!(store.len().unwrap(), 1);
        let Lookup::Hit(warm) = store.get(fp) else {
            panic!("expected hit");
        };
        assert_eq!(warm.schedule, result.schedule);
        assert_eq!(warm.score.to_bits(), result.score.to_bits());
        let c = store.counters();
        assert_eq!((c.hits, c.misses, c.corrupt), (1, 1, 0));
        assert_eq!(store.stats().store_hits, 1);
        store.flush().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_put_is_a_noop() {
        let dir = scratch_dir("noop");
        let store = ScheduleStore::open(&dir).unwrap();
        let fp = fingerprint_of_key_bytes(b"k1");
        let result = sample_result();
        assert!(store.put(fp, &result).unwrap());
        assert!(!store.put(fp, &result).unwrap(), "existing entry kept");
        assert_eq!(store.len().unwrap(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stored_entries_survive_reopen() {
        let dir = scratch_dir("reopen");
        let fp = fingerprint_of_key_bytes(b"k1");
        let result = sample_result();
        {
            let store = ScheduleStore::open(&dir).unwrap();
            store.put(fp, &result).unwrap();
            store.flush().unwrap();
        }
        let store = ScheduleStore::open(&dir).unwrap();
        let Lookup::Hit(warm) = store.get(fp) else {
            panic!("expected hit after reopen");
        };
        assert_eq!(warm.schedule, result.schedule);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stored_store_counters_are_zeroed() {
        let dir = scratch_dir("zeroed");
        let store = ScheduleStore::open(&dir).unwrap();
        let fp = fingerprint_of_key_bytes(b"k1");
        let mut result = sample_result();
        result.stats.store_hits = 42;
        result.stats.store_misses = 7;
        store.put(fp, &result).unwrap();
        let Lookup::Hit(warm) = store.get(fp) else {
            panic!("expected hit");
        };
        assert_eq!(warm.stats.store_hits, 0);
        assert_eq!(warm.stats.store_misses, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lru_eviction_bounds_size_and_keeps_recent() {
        let dir = scratch_dir("lru");
        let result = sample_result();
        let entry_bytes = (HEADER_LEN + encode_layer_result(&result).len()) as u64;
        // Room for two entries, not three.
        let store = ScheduleStore::with_capacity(&dir, entry_bytes * 2).unwrap();
        let fps: Vec<Fingerprint> = (0..3u8).map(|i| fingerprint_of_key_bytes(&[i])).collect();
        store.put(fps[0], &result).unwrap();
        store.put(fps[1], &result).unwrap();
        // Touch fps[0] so fps[1] is the LRU victim.
        assert!(matches!(store.get(fps[0]), Lookup::Hit(_)));
        store.put(fps[2], &result).unwrap();
        assert_eq!(store.counters().evictions, 1);
        assert!(store.contains(fps[0]), "recently used entry kept");
        assert!(!store.contains(fps[1]), "LRU entry evicted");
        assert!(store.contains(fps[2]), "new entry kept");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unbounded_store_never_evicts() {
        let dir = scratch_dir("unbounded");
        let store = ScheduleStore::with_capacity(&dir, 0).unwrap();
        let result = sample_result();
        for i in 0..4u8 {
            store.put(fingerprint_of_key_bytes(&[i]), &result).unwrap();
        }
        assert_eq!(store.len().unwrap(), 4);
        assert_eq!(store.counters().evictions, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crashed_temp_files_are_reaped_on_open() {
        let dir = scratch_dir("reap");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(".tmp-deadbeef-1"), b"torn").unwrap();
        let store = ScheduleStore::open(&dir).unwrap();
        assert!(!dir.join(".tmp-deadbeef-1").exists());
        assert_eq!(store.len().unwrap(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_lists_valid_entries_and_skips_damage() {
        let dir = scratch_dir("manifest");
        let store = ScheduleStore::open(&dir).unwrap();
        let result = sample_result();
        let fps: Vec<Fingerprint> = (0..3u8).map(|i| fingerprint_of_key_bytes(&[i])).collect();
        for &fp in &fps {
            store.put(fp, &result).unwrap();
        }
        // Plant damage a manifest must never advertise: an in-flight
        // temp write, a quarantine file, and a torn entry.
        fs::write(dir.join(".tmp-deadbeef-9"), b"in flight").unwrap();
        fs::write(dir.join(format!(".tmp-q-{}-9-0", fps[0].hex())), b"q").unwrap();
        let torn = fingerprint_of_key_bytes(b"torn");
        fs::write(store.entry_path(torn), b"FXS1 torn").unwrap();
        let manifest = store.manifest().unwrap();
        let mut want: Vec<String> = fps.iter().map(Fingerprint::hex).collect();
        want.sort();
        let got: Vec<String> = manifest.iter().map(|e| e.fingerprint.hex()).collect();
        assert_eq!(got, want, "exactly the healthy entries, sorted");
        for e in &manifest {
            let bytes = fs::read(store.entry_path(e.fingerprint)).unwrap();
            assert_eq!(e.len, bytes.len() as u64);
            assert_eq!(
                e.checksum,
                u64::from_le_bytes(bytes[16..24].try_into().unwrap())
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn export_ingest_replicates_byte_identically() {
        let a_dir = scratch_dir("export-a");
        let b_dir = scratch_dir("export-b");
        let a = ScheduleStore::open(&a_dir).unwrap();
        let b = ScheduleStore::open(&b_dir).unwrap();
        let fp = fingerprint_of_key_bytes(b"replicate");
        a.put(fp, &sample_result()).unwrap();
        let bytes = a.export(fp).unwrap().expect("valid entry exports");
        assert_eq!(b.ingest(fp, &bytes).unwrap(), Ingest::Stored);
        assert_eq!(b.ingest(fp, &bytes).unwrap(), Ingest::Exists);
        assert_eq!(
            fs::read(a.entry_path(fp)).unwrap(),
            fs::read(b.entry_path(fp)).unwrap(),
            "replicated entry file is byte-identical"
        );
        // Replication must not skew serving counters.
        let c = b.counters();
        assert_eq!((c.hits, c.misses, c.corrupt), (0, 0, 0));
        let Lookup::Hit(warm) = b.get(fp) else {
            panic!("expected hit on replica");
        };
        assert_eq!(warm.stats.store_hits, 0, "stored counters stay zeroed");
        assert_eq!(a.manifest().unwrap(), b.manifest().unwrap());
        fs::remove_dir_all(&a_dir).unwrap();
        fs::remove_dir_all(&b_dir).unwrap();
    }

    #[test]
    fn ingest_rejects_damaged_bytes_without_touching_store() {
        let dir = scratch_dir("ingest-reject");
        let store = ScheduleStore::open(&dir).unwrap();
        let fp = fingerprint_of_key_bytes(b"damaged");
        let src = scratch_dir("ingest-src");
        let source = ScheduleStore::open(&src).unwrap();
        source.put(fp, &sample_result()).unwrap();
        let mut bytes = source.export(fp).unwrap().unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        match store.ingest(fp, &bytes).unwrap() {
            Ingest::Rejected(CorruptKind::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum rejection, got {other:?}"),
        }
        assert!(!store.contains(fp), "rejected bytes never land on disk");
        assert_eq!(store.counters().corrupt, 1);
        assert_eq!(
            store.ingest(fp, b"FX").unwrap(),
            Ingest::Rejected(CorruptKind::TruncatedHeader)
        );
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&src).unwrap();
    }

    #[test]
    fn export_refuses_corrupt_entries() {
        let dir = scratch_dir("export-corrupt");
        let store = ScheduleStore::open(&dir).unwrap();
        let fp = fingerprint_of_key_bytes(b"sick");
        store.put(fp, &sample_result()).unwrap();
        let path = store.entry_path(fp);
        let mut bytes = fs::read(&path).unwrap();
        bytes[HEADER_LEN + 2] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(store.export(fp).unwrap(), None, "damage is not replicated");
        assert_eq!(
            store.export(fingerprint_of_key_bytes(b"absent")).unwrap(),
            None
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_entry_files_are_ignored() {
        let dir = scratch_dir("ignore");
        let store = ScheduleStore::open(&dir).unwrap();
        fs::write(dir.join("README.txt"), b"not an entry").unwrap();
        assert_eq!(store.len().unwrap(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
