//! The corrupt-miss repair path under concurrency: multiple store
//! handles sharing one directory (as the serve engine's per-config
//! drivers do) race lookups, repairs and live corruption injection.
//! The invariants, regardless of interleaving:
//!
//! - no thread panics,
//! - a `Lookup::Hit` always decodes to the one canonical result that
//!   was ever stored (torn or damaged bytes must never be served),
//! - a repair (re-search + put) is never destroyed by a concurrent
//!   reader still acting on stale corrupt bytes — the regression this
//!   suite pins is exactly that delete/put race,
//! - the store ends healthy: one validated entry, no temp litter.

use flexer_arch::{ArchConfig, ArchPreset};
use flexer_model::ConvLayer;
use flexer_sched::wire::encode_layer_result;
use flexer_sched::{search_layer, LayerSearchResult, SearchOptions};
use flexer_store::{fingerprint, Fingerprint, Lookup, ScheduleStore};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

static DIR_ID: AtomicU32 = AtomicU32::new(0);

/// A scratch store directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        Self(std::env::temp_dir().join(format!(
            "fxs-race-{tag}-{}-{}",
            std::process::id(),
            DIR_ID.fetch_add(1, Ordering::Relaxed)
        )))
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Deterministic xorshift64* PRNG: the corruption schedule is a pure
/// function of the seed, so a failure replays.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Encoding with wall-time and store counters zeroed: the only fields
/// of a deterministic single-threaded search that vary run-to-run, so
/// equality on the rest means "the same schedule".
fn masked(r: &LayerSearchResult) -> Vec<u8> {
    let mut r = r.clone();
    r.stats.gen_nanos = 0;
    r.stats.eval_nanos = 0;
    r.stats.commit_nanos = 0;
    r.stats.verify_nanos = 0;
    r.stats.bound_nanos = 0;
    r.stats.seed_nanos = 0;
    r.stats.store_hits = 0;
    r.stats.store_misses = 0;
    r.stats.store_evictions = 0;
    r.stats.store_corrupt = 0;
    encode_layer_result(&r)
}

/// The one canonical search result these tests ever store. The
/// scheduling side of the race re-runs this search on every miss,
/// exactly as the driver's store loop does.
fn canonical() -> (ConvLayer, ArchConfig, SearchOptions, LayerSearchResult) {
    let layer = ConvLayer::new("race", 32, 14, 14, 32).unwrap();
    let arch = ArchConfig::preset(ArchPreset::Arch1);
    let mut opts = SearchOptions::quick();
    opts.threads = 1;
    let result = search_layer(&layer, &arch, &opts).unwrap();
    (layer, arch, opts, result)
}

/// Damages the entry file in place with a seeded mutation: bitflip,
/// truncation, header garbage, or full zeroing — every corruption
/// class the parser types.
fn corrupt_in_place(path: &std::path::Path, rng: &mut Rng) {
    let Ok(mut bytes) = std::fs::read(path) else {
        return; // mid-repair: nothing at the address right now
    };
    if bytes.is_empty() {
        return;
    }
    match rng.below(4) {
        0 => {
            let i = rng.below(bytes.len() as u64) as usize;
            bytes[i] ^= 1 << rng.below(8);
        }
        1 => {
            let keep = rng.below(bytes.len() as u64) as usize;
            bytes.truncate(keep);
        }
        2 => {
            // Garbage magic: typed as BadMagic.
            bytes[0] ^= 0xff;
        }
        _ => bytes.fill(0),
    }
    let _ = std::fs::write(path, &bytes);
}

#[test]
fn concurrent_corruption_never_serves_torn_entries_and_always_reheals() {
    let dir = Scratch::new("loop");
    let (layer, arch, opts, result) = canonical();
    let fp = fingerprint(&layer, &arch, &opts, flexer_sched::SchedulerKind::Ooo);
    let canonical_bytes = masked(&result);

    // Two handles on one directory — two engines, as in flexer-serve.
    let stores: Vec<Arc<ScheduleStore>> = (0..2)
        .map(|_| Arc::new(ScheduleStore::open(&dir.0).unwrap()))
        .collect();
    stores[0].put(fp, &result).unwrap();
    let entry_path = dir.0.join(format!("{}.fxs", fp.hex()));
    let repairs = Arc::new(AtomicU64::new(0));

    // Scheduling loops: every miss (plain or corrupt) re-searches and
    // repairs, every hit must be byte-identical to the canonical
    // result.
    let schedulers: Vec<_> = stores
        .iter()
        .cloned()
        .map(|store| {
            let layer = layer.clone();
            let arch = arch.clone();
            let opts = opts.clone();
            let canonical_bytes = canonical_bytes.clone();
            let repairs = Arc::clone(&repairs);
            std::thread::spawn(move || {
                for _ in 0..150 {
                    match store.get(fp) {
                        Lookup::Hit(hit) => {
                            assert_eq!(
                                masked(&hit),
                                canonical_bytes,
                                "a hit served bytes that were never stored"
                            );
                        }
                        Lookup::Miss | Lookup::Corrupt(_) => {
                            let searched = search_layer(&layer, &arch, &opts).unwrap();
                            assert_eq!(masked(&searched), canonical_bytes);
                            let _ = store.put(fp, &searched);
                            repairs.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    std::thread::yield_now();
                }
            })
        })
        .collect();

    // The corruptor: seeded, in-place mutations against the live entry.
    let corruptor = {
        let entry_path = entry_path.clone();
        std::thread::spawn(move || {
            let mut rng = Rng(0x5eed_cafe_f00d_0001);
            for _ in 0..400 {
                corrupt_in_place(&entry_path, &mut rng);
                std::thread::yield_now();
            }
        })
    };

    for t in schedulers {
        t.join().expect("scheduling loop panicked");
    }
    corruptor.join().expect("corruptor panicked");

    // The injection must actually have bitten, and repairs must have
    // run — otherwise this test proved nothing.
    let corrupt_seen: u64 = stores.iter().map(|s| s.counters().corrupt).sum();
    assert!(corrupt_seen > 0, "no corruption was ever detected");
    assert!(repairs.load(Ordering::Relaxed) > 0, "no repair ever ran");

    // Final heal: after one last repair pass the entry is valid and
    // stays valid — the canonical bytes, not some torn residue.
    let store = &stores[0];
    if matches!(store.get(fp), Lookup::Miss | Lookup::Corrupt(_)) {
        store.put(fp, &result).unwrap();
    }
    let Lookup::Hit(healed) = store.get(fp) else {
        panic!("store did not heal");
    };
    assert_eq!(masked(&healed), canonical_bytes);

    // No quarantine/temp litter survives the melee.
    let litter: Vec<String> = std::fs::read_dir(&dir.0)
        .unwrap()
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.starts_with(".tmp-").then_some(name)
        })
        .collect();
    assert!(litter.is_empty(), "temp litter left behind: {litter:?}");
}

#[test]
fn corrupt_lookup_does_not_destroy_a_concurrent_repair() {
    // Hammer the narrow interleaving directly: one thread flips a byte
    // and immediately repairs (corrupt → put), another continuously
    // reads. Pre-fix, the reader's delete-on-corrupt could land *after*
    // the repairing rename and destroy the fresh entry, so the final
    // lookup — with no corruption in flight — would miss. Post-fix the
    // quarantine protocol restores any healthy entry it captures.
    let dir = Scratch::new("repair-race");
    let (_, _, _, result) = canonical();
    let fp = flexer_store::fingerprint_of_key_bytes(b"repair-race");
    let canonical_bytes = masked(&result);

    let a = Arc::new(ScheduleStore::open(&dir.0).unwrap());
    let b = Arc::new(ScheduleStore::open(&dir.0).unwrap());
    a.put(fp, &result).unwrap();
    let entry_path = dir.0.join(format!("{}.fxs", fp.hex()));

    let flipper = {
        let a = Arc::clone(&a);
        let result = result.clone();
        std::thread::spawn(move || {
            for _ in 0..200 {
                if let Ok(mut bytes) = std::fs::read(&entry_path) {
                    if let Some(last) = bytes.last_mut() {
                        *last ^= 1;
                        let _ = std::fs::write(&entry_path, &bytes);
                    }
                }
                // Detect and repair, as the driver would.
                if matches!(a.get(fp), Lookup::Miss | Lookup::Corrupt(_)) {
                    let _ = a.put(fp, &result);
                }
            }
        })
    };
    let reader = {
        let b = Arc::clone(&b);
        let result = result.clone();
        std::thread::spawn(move || {
            for _ in 0..200 {
                match b.get(fp) {
                    Lookup::Hit(hit) => {
                        assert_eq!(masked(&hit), canonical_bytes);
                    }
                    Lookup::Miss | Lookup::Corrupt(_) => {
                        let _ = b.put(fp, &result);
                    }
                }
            }
        })
    };
    flipper.join().expect("flipper panicked");
    reader.join().expect("reader panicked");

    // Quiescent state: nothing is corrupting any more, so after at
    // most one repair the entry exists and validates.
    if matches!(a.get(fp), Lookup::Miss | Lookup::Corrupt(_)) {
        a.put(fp, &result).unwrap();
    }
    assert!(matches!(a.get(fp), Lookup::Hit(_)), "repair was destroyed");
    assert_eq!(a.len().unwrap(), 1);
}

/// The exact lost-repair interleaving, staged deterministically. A
/// FIFO at the entry path lets us freeze a reader *inside* `get`'s
/// file read; while it is frozen a concurrent repair renames a healthy
/// entry into place; then the reader is fed corrupt bytes and resumes.
/// The reader now acts on stale corrupt evidence against a path that
/// holds a fresh healthy entry — the pre-fix delete destroyed that
/// entry (next lookup missed), the quarantine protocol captures it,
/// re-validates, restores, and even serves it as a hit.
#[test]
#[cfg(unix)]
fn stale_corrupt_evidence_cannot_destroy_a_completed_repair() {
    use std::io::Write;

    let dir = Scratch::new("fifo-race");
    let (_, _, _, result) = canonical();
    let fp = flexer_store::fingerprint_of_key_bytes(b"fifo-race");
    let canonical_bytes = masked(&result);

    let a = Arc::new(ScheduleStore::open(&dir.0).unwrap());
    let b = Arc::new(ScheduleStore::open(&dir.0).unwrap());
    let entry_path = dir.0.join(format!("{}.fxs", fp.hex()));

    // Stage 1: the entry address is a FIFO, so the reader's `fs::read`
    // inside `get` blocks at open until we attach a writer.
    let status = std::process::Command::new("mkfifo")
        .arg(&entry_path)
        .status()
        .expect("spawn mkfifo");
    assert!(status.success(), "mkfifo failed");

    let reader = {
        let b = Arc::clone(&b);
        std::thread::spawn(move || b.get(fp))
    };

    // Stage 2: attaching the writer end rendezvouses with the reader's
    // open; the reader is now parked inside the read, pre-parse.
    let mut fifo = std::fs::OpenOptions::new()
        .write(true)
        .open(&entry_path)
        .expect("open fifo writer");

    // Stage 3: while the reader is frozen, a repair completes — the
    // other handle's corrupt-delete has already cleared the address
    // and its re-search renames a healthy entry into place (the
    // reader's open fd still points at the FIFO inode, exactly like a
    // stale read of a since-replaced file).
    std::fs::remove_file(&entry_path).unwrap();
    assert!(a.put(fp, &result).unwrap());
    assert!(matches!(a.get(fp), Lookup::Hit(_)));

    // Stage 4: feed the frozen reader corrupt bytes and let it run.
    fifo.write_all(b"definitely not an entry").unwrap();
    drop(fifo);
    let lookup = reader.join().expect("reader panicked");

    // The repair must survive the reader's stale corrupt verdict. (The
    // quarantine even recovers the healthy entry for the reader
    // itself, but the load-bearing assertion is the store state.)
    let Lookup::Hit(after) = a.get(fp) else {
        panic!("stale corrupt evidence destroyed a completed repair (got {lookup:?})");
    };
    assert_eq!(masked(&after), canonical_bytes);
    assert_eq!(a.len().unwrap(), 1);
}

/// Anti-entropy against a store under active attack: while a seeded
/// corruptor mutates live entries (driving the quarantine path, so
/// `.tmp-q-*` files genuinely flicker in and out of the directory) and
/// a repairer re-searches and re-puts, concurrent `manifest()`
/// snapshots must only ever advertise healthy entries at known
/// addresses — never an in-flight temp write, a quarantine capture, or
/// a torn `.fxs` — and every advertised row must export bytes a peer's
/// `ingest` accepts (or have vanished to corruption since the
/// snapshot, in which case `export` re-validates and returns `None`
/// rather than shipping damage).
#[test]
fn manifest_during_corruption_only_advertises_healthy_entries() {
    use flexer_store::Ingest;

    let dir = Scratch::new("manifest-melee");
    let peer_dir = Scratch::new("manifest-peer");
    let (_, _, _, result) = canonical();
    let fps: Vec<Fingerprint> = [&b"melee-a"[..], b"melee-b", b"melee-c"]
        .iter()
        .map(|k| flexer_store::fingerprint_of_key_bytes(k))
        .collect();

    let store = Arc::new(ScheduleStore::open(&dir.0).unwrap());
    for &fp in &fps {
        store.put(fp, &result).unwrap();
    }
    let entry_paths: Vec<PathBuf> = fps
        .iter()
        .map(|fp| dir.0.join(format!("{}.fxs", fp.hex())))
        .collect();

    let corruptor = {
        let entry_paths = entry_paths.clone();
        std::thread::spawn(move || {
            let mut rng = Rng(0x5eed_aaaa_bbbb_0002);
            for i in 0..300 {
                corrupt_in_place(&entry_paths[i % entry_paths.len()], &mut rng);
                std::thread::yield_now();
            }
        })
    };
    let repairer = {
        let store = Arc::clone(&store);
        let result = result.clone();
        let fps = fps.clone();
        std::thread::spawn(move || {
            for _ in 0..100 {
                for &fp in &fps {
                    if matches!(store.get(fp), Lookup::Miss | Lookup::Corrupt(_)) {
                        let _ = store.put(fp, &result);
                    }
                }
                std::thread::yield_now();
            }
        })
    };

    // The anti-entropy side, concurrent with the melee: snapshot,
    // check, and replicate what the snapshot advertises.
    let peer = ScheduleStore::open(&peer_dir.0).unwrap();
    for _ in 0..100 {
        let manifest = store.manifest().expect("manifest never errors");
        for row in &manifest {
            assert!(
                fps.contains(&row.fingerprint),
                "manifest advertised an unknown address {} — a temp or \
                 quarantine file leaked into the snapshot",
                row.fingerprint.hex()
            );
            if let Some(bytes) = store.export(row.fingerprint).unwrap() {
                let verdict = peer.ingest(row.fingerprint, &bytes).unwrap();
                assert!(
                    !matches!(verdict, Ingest::Rejected(_)),
                    "{}: an exported entry failed a peer's validation",
                    row.fingerprint.hex()
                );
            }
        }
        std::thread::yield_now();
    }

    corruptor.join().expect("corruptor panicked");
    repairer.join().expect("repairer panicked");

    // Quiescent: one final repair pass, then the manifest advertises
    // exactly the three healthy entries and a peer reaches parity.
    for &fp in &fps {
        if matches!(store.get(fp), Lookup::Miss | Lookup::Corrupt(_)) {
            store.put(fp, &result).unwrap();
        }
    }
    let final_manifest = store.manifest().unwrap();
    let mut want = fps.clone();
    want.sort();
    let have: Vec<Fingerprint> = final_manifest.iter().map(|r| r.fingerprint).collect();
    assert_eq!(have, want, "healed store advertises exactly its entries");
    for row in &final_manifest {
        let bytes = store
            .export(row.fingerprint)
            .unwrap()
            .expect("healthy entry exports");
        assert!(!matches!(
            peer.ingest(row.fingerprint, &bytes).unwrap(),
            Ingest::Rejected(_)
        ));
    }
    assert_eq!(
        peer.manifest().unwrap(),
        final_manifest,
        "replication from the healed store reaches manifest parity"
    );
}

#[test]
fn quarantine_leftovers_are_reaped_on_open() {
    let dir = Scratch::new("reap-q");
    std::fs::create_dir_all(&dir.0).unwrap();
    let stale = dir.0.join(".tmp-q-deadbeef-1-0");
    std::fs::write(&stale, b"crashed mid-quarantine").unwrap();
    let store = ScheduleStore::open(&dir.0).unwrap();
    assert!(!stale.exists(), "quarantine leftover not reaped");
    assert_eq!(store.len().unwrap(), 0);
}

#[test]
fn fingerprint_is_stable_across_handles() {
    // Two handles must agree on the address for the same key — the
    // precondition for every cross-handle race above.
    let fp1: Fingerprint = flexer_store::fingerprint_of_key_bytes(b"addr");
    let fp2: Fingerprint = flexer_store::fingerprint_of_key_bytes(b"addr");
    assert_eq!(fp1, fp2);
    assert_eq!(fp1.hex(), fp2.hex());
}
