//! Corruption drills: damage entries on disk and assert the store
//! reports a typed corrupt-entry miss — then repairs itself on the
//! next put — rather than panicking or serving a wrong schedule.

use flexer_arch::{ArchConfig, ArchPreset};
use flexer_model::ConvLayer;
use flexer_sched::{search_layer, LayerSearchResult, SchedulerKind, SearchOptions};
use flexer_store::{fingerprint, CorruptKind, Fingerprint, Lookup, ScheduleStore};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

static DIR_ID: AtomicU32 = AtomicU32::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "fxs-corrupt-{tag}-{}-{}",
        std::process::id(),
        DIR_ID.fetch_add(1, Ordering::Relaxed)
    ))
}

struct Fixture {
    dir: PathBuf,
    store: ScheduleStore,
    fp: Fingerprint,
    result: LayerSearchResult,
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

/// A store holding one real searched entry.
fn fixture(tag: &str) -> Fixture {
    let dir = scratch_dir(tag);
    let store = ScheduleStore::open(&dir).unwrap();
    let layer = ConvLayer::new("t", 32, 14, 14, 32).unwrap();
    let arch = ArchConfig::preset(ArchPreset::Arch1);
    let mut opts = SearchOptions::quick();
    opts.threads = 1;
    let fp = fingerprint(&layer, &arch, &opts, SchedulerKind::Ooo);
    let result = search_layer(&layer, &arch, &opts).unwrap();
    store.put(fp, &result).unwrap();
    Fixture {
        dir,
        store,
        fp,
        result,
    }
}

/// The single entry file of the fixture's store.
fn entry_file(f: &Fixture) -> PathBuf {
    let mut files: Vec<PathBuf> = fs::read_dir(&f.dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("fxs"))
        .collect();
    assert_eq!(files.len(), 1);
    files.pop().unwrap()
}

/// Asserts the corrupt entry was deleted and a fresh put repairs the
/// store so the next lookup hits with the original schedule.
fn assert_repairs(f: &Fixture) {
    assert!(
        !f.store.contains(f.fp),
        "corrupt entry must be deleted, not left to fail again"
    );
    assert!(f.store.put(f.fp, &f.result).unwrap(), "repair put writes");
    let Lookup::Hit(warm) = f.store.get(f.fp) else {
        panic!("repaired entry must hit");
    };
    assert_eq!(warm.schedule, f.result.schedule);
}

#[test]
fn truncated_payload_is_a_typed_miss_and_repairs() {
    let f = fixture("truncate");
    let path = entry_file(&f);
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
    match f.store.get(f.fp) {
        Lookup::Corrupt(CorruptKind::LengthMismatch { header, actual }) => {
            assert_eq!(actual + 7, header);
        }
        other => panic!("expected LengthMismatch, got {other:?}"),
    }
    assert_eq!(f.store.counters().corrupt, 1);
    assert_repairs(&f);
}

#[test]
fn truncation_inside_the_header_is_a_typed_miss() {
    let f = fixture("truncate-header");
    let path = entry_file(&f);
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, &bytes[..10]).unwrap();
    assert!(matches!(
        f.store.get(f.fp),
        Lookup::Corrupt(CorruptKind::TruncatedHeader)
    ));
    assert_repairs(&f);
}

#[test]
fn bit_flipped_payload_is_a_typed_miss_and_repairs() {
    let f = fixture("bitflip");
    let path = entry_file(&f);
    let mut bytes = fs::read(&path).unwrap();
    let mid = 24 + (bytes.len() - 24) / 2;
    bytes[mid] ^= 0x40;
    fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        f.store.get(f.fp),
        Lookup::Corrupt(CorruptKind::ChecksumMismatch { .. })
    ));
    assert_eq!(f.store.counters().corrupt, 1);
    assert_repairs(&f);
}

#[test]
fn bit_flipped_magic_is_a_typed_miss() {
    let f = fixture("magic");
    let path = entry_file(&f);
    let mut bytes = fs::read(&path).unwrap();
    bytes[0] ^= 0xff;
    fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        f.store.get(f.fp),
        Lookup::Corrupt(CorruptKind::BadMagic)
    ));
    assert_repairs(&f);
}

#[test]
fn foreign_format_version_is_a_typed_miss() {
    let f = fixture("version");
    let path = entry_file(&f);
    let mut bytes = fs::read(&path).unwrap();
    bytes[4] = 99;
    fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        f.store.get(f.fp),
        Lookup::Corrupt(CorruptKind::VersionMismatch { found: 99 })
    ));
    assert_repairs(&f);
}

#[test]
fn garbage_file_under_a_valid_address_never_panics() {
    let f = fixture("garbage");
    let path = entry_file(&f);
    // Arbitrary junk of various sizes, including empty.
    for junk in [&b""[..], &b"x"[..], &[0u8; 24][..], &[0xAAu8; 4096][..]] {
        fs::write(&path, junk).unwrap();
        assert!(matches!(f.store.get(f.fp), Lookup::Corrupt(_)));
        // Re-seed the entry for the next round.
        f.store.put(f.fp, &f.result).unwrap();
    }
}

#[test]
fn corrupt_lookup_counts_separately_from_plain_misses() {
    let f = fixture("counts");
    let path = entry_file(&f);
    let mut bytes = fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    fs::write(&path, &bytes).unwrap();
    assert!(matches!(f.store.get(f.fp), Lookup::Corrupt(_)));
    // The entry is gone now: a second lookup is a *plain* miss.
    assert!(matches!(f.store.get(f.fp), Lookup::Miss));
    let c = f.store.counters();
    assert_eq!(c.corrupt, 1);
    assert_eq!(c.misses, 1);
    assert_eq!(c.hits, 0);
}
