//! Golden pin of the store fingerprint for a fixed (arch, layer,
//! options) triple.
//!
//! The fingerprint is the content address of a persisted schedule: it
//! hashes the canonical key bytes (layer shape, architecture, every
//! winner-relevant search knob, scheduler kind) together with the
//! store format version. If this test fails, the key encoding or the
//! memo-relevant option set drifted — which would silently serve stale
//! schedules to old stores. The fix is never to update the constant
//! alone: bump `flexer_store::FORMAT_VERSION` (re-keying every entry),
//! then re-pin.

use flexer_arch::{ArchConfig, ArchPreset};
use flexer_model::ConvLayer;
use flexer_sched::{SchedulerKind, SearchOptions};
use flexer_store::{fingerprint, FORMAT_VERSION};

/// The pinned address of (Arch1, conv 32x14x14 -> 32, quick options,
/// OoO scheduler) under store format version 3 (residency in the key).
const GOLDEN_OOO: &str = "7b11f4a11404493975164f69316081d5";
/// Same triple under the static baseline scheduler.
const GOLDEN_STATIC: &str = "9bda92d3a1fe3529511fd0576c86533c";

fn triple() -> (ConvLayer, ArchConfig, SearchOptions) {
    (
        ConvLayer::new("golden", 32, 14, 14, 32).unwrap(),
        ArchConfig::preset(ArchPreset::Arch1),
        SearchOptions::quick(),
    )
}

#[test]
fn fingerprint_bytes_are_pinned() {
    assert_eq!(FORMAT_VERSION, 3, "format bumped: re-pin the goldens");
    let (layer, arch, opts) = triple();
    assert_eq!(
        fingerprint(&layer, &arch, &opts, SchedulerKind::Ooo).hex(),
        GOLDEN_OOO,
        "key encoding drifted — bump flexer_store::FORMAT_VERSION, then re-pin"
    );
    assert_eq!(
        fingerprint(&layer, &arch, &opts, SchedulerKind::Static).hex(),
        GOLDEN_STATIC,
        "key encoding drifted — bump flexer_store::FORMAT_VERSION, then re-pin"
    );
}

#[test]
fn fingerprint_is_stable_across_calls() {
    let (layer, arch, opts) = triple();
    let a = fingerprint(&layer, &arch, &opts, SchedulerKind::Ooo);
    let b = fingerprint(&layer, &arch, &opts, SchedulerKind::Ooo);
    assert_eq!(a, b);
}

#[test]
fn winner_neutral_options_do_not_move_the_address() {
    let (layer, arch, mut opts) = triple();
    let base = fingerprint(&layer, &arch, &opts, SchedulerKind::Ooo);
    opts.validate = true;
    opts.prune = false;
    opts.threads = 3;
    opts.seed.enabled = true;
    opts.seed.top_k = 11;
    assert_eq!(fingerprint(&layer, &arch, &opts, SchedulerKind::Ooo), base);
}

#[test]
fn winner_relevant_options_move_the_address() {
    let (layer, arch, opts) = triple();
    let base = fingerprint(&layer, &arch, &opts, SchedulerKind::Ooo);
    let mut metric = opts.clone();
    metric.metric = flexer_sched::Metric::Latency;
    assert_ne!(
        fingerprint(&layer, &arch, &metric, SchedulerKind::Ooo),
        base
    );
    let mut tiling = opts.clone();
    tiling.tiling.max_ops += 1;
    assert_ne!(
        fingerprint(&layer, &arch, &tiling, SchedulerKind::Ooo),
        base
    );
    let mut flows = opts.clone();
    flows.dataflows.pop();
    assert_ne!(fingerprint(&layer, &arch, &flows, SchedulerKind::Ooo), base);
    let mut resident = opts;
    resident.residency.input_resident = true;
    assert_ne!(
        fingerprint(&layer, &arch, &resident, SchedulerKind::Ooo),
        base,
        "residency is winner-relevant and must re-key the entry"
    );
}
