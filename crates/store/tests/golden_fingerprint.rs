//! Golden pin of the store fingerprint for a fixed (arch, layer,
//! options) triple.
//!
//! The fingerprint is the content address of a persisted schedule: it
//! hashes the canonical key bytes (layer shape, architecture, every
//! winner-relevant search knob, scheduler kind) together with the
//! store format version. If this test fails, the key encoding or the
//! memo-relevant option set drifted — which would silently serve stale
//! schedules to old stores. The fix is never to update the constant
//! alone: bump `flexer_store::FORMAT_VERSION` (re-keying every entry),
//! then re-pin.

use flexer_arch::{ArchConfig, ArchPreset};
use flexer_model::ConvLayer;
use flexer_sched::{SchedulerKind, SearchOptions};
use flexer_store::{fingerprint, FORMAT_VERSION};

/// The pinned address of (Arch1, conv 32x14x14 -> 32, quick options,
/// OoO scheduler) under store format version 4 (operator kind and
/// heterogeneous core classes in the key).
const GOLDEN_OOO: &str = "52f8aa6da620181b0c745eee444445e7";
/// Same triple under the static baseline scheduler.
const GOLDEN_STATIC: &str = "6f782f518f48a73c60b9ae32bb5c58d6";

fn triple() -> (ConvLayer, ArchConfig, SearchOptions) {
    (
        ConvLayer::new("golden", 32, 14, 14, 32).unwrap(),
        ArchConfig::preset(ArchPreset::Arch1),
        SearchOptions::quick(),
    )
}

#[test]
fn fingerprint_bytes_are_pinned() {
    assert_eq!(FORMAT_VERSION, 4, "format bumped: re-pin the goldens");
    let (layer, arch, opts) = triple();
    assert_eq!(
        fingerprint(&layer, &arch, &opts, SchedulerKind::Ooo).hex(),
        GOLDEN_OOO,
        "key encoding drifted — bump flexer_store::FORMAT_VERSION, then re-pin"
    );
    assert_eq!(
        fingerprint(&layer, &arch, &opts, SchedulerKind::Static).hex(),
        GOLDEN_STATIC,
        "key encoding drifted — bump flexer_store::FORMAT_VERSION, then re-pin"
    );
}

#[test]
fn fingerprint_is_stable_across_calls() {
    let (layer, arch, opts) = triple();
    let a = fingerprint(&layer, &arch, &opts, SchedulerKind::Ooo);
    let b = fingerprint(&layer, &arch, &opts, SchedulerKind::Ooo);
    assert_eq!(a, b);
}

#[test]
fn matmul_aliases_the_equivalent_pointwise_conv() {
    // A matmul lowers to exactly the geometry of a 1x1 conv with
    // height = rows and width = 1, so the two share one store entry:
    // a schedule searched for either warm-starts the other.
    let (_, arch, opts) = triple();
    let mm = ConvLayer::matmul("mm", 196, 32, 64).unwrap();
    let pw = flexer_model::ConvLayerBuilder::new("pw", 32, 196, 1, 64)
        .build()
        .unwrap();
    assert_eq!(
        fingerprint(&mm, &arch, &opts, SchedulerKind::Ooo),
        fingerprint(&pw, &arch, &opts, SchedulerKind::Ooo)
    );
}

#[test]
fn grouped_kind_re_keys_the_address() {
    let (_, arch, opts) = triple();
    let dense = ConvLayer::new("d", 32, 14, 14, 32).unwrap();
    let grouped = flexer_model::ConvLayerBuilder::new("d", 32, 14, 14, 32)
        .kernel(3, 3)
        .padding(1)
        .groups(8)
        .build()
        .unwrap();
    assert_ne!(
        fingerprint(&dense, &arch, &opts, SchedulerKind::Ooo),
        fingerprint(&grouped, &arch, &opts, SchedulerKind::Ooo),
        "a grouped layer has different winners and must not alias dense"
    );
    let g4 = flexer_model::ConvLayerBuilder::new("d", 32, 14, 14, 32)
        .kernel(3, 3)
        .padding(1)
        .groups(4)
        .build()
        .unwrap();
    assert_ne!(
        fingerprint(&g4, &arch, &opts, SchedulerKind::Ooo),
        fingerprint(&grouped, &arch, &opts, SchedulerKind::Ooo),
        "the group count is part of the key"
    );
}

#[test]
fn heterogeneous_classes_re_key_the_address() {
    let (layer, _, opts) = triple();
    let hetero = ArchConfig::hetero1();
    // A homogeneous config with hetero1's *effective* parameters.
    let flat = flexer_arch::ArchConfigBuilder::new(
        hetero.cores(),
        hetero.spm_bytes(),
        hetero.dma_bytes_per_cycle(),
    )
    .pe_array(hetero.pe_rows(), hetero.pe_cols())
    .build()
    .unwrap();
    assert_ne!(
        fingerprint(&layer, &hetero, &opts, SchedulerKind::Ooo),
        fingerprint(&layer, &flat, &opts, SchedulerKind::Ooo),
        "class mix is winner-relevant even at equal effective params"
    );
}

#[test]
fn winner_neutral_options_do_not_move_the_address() {
    let (layer, arch, mut opts) = triple();
    let base = fingerprint(&layer, &arch, &opts, SchedulerKind::Ooo);
    opts.validate = true;
    opts.prune = false;
    opts.threads = 3;
    opts.seed.enabled = true;
    opts.seed.top_k = 11;
    assert_eq!(fingerprint(&layer, &arch, &opts, SchedulerKind::Ooo), base);
}

#[test]
fn winner_relevant_options_move_the_address() {
    let (layer, arch, opts) = triple();
    let base = fingerprint(&layer, &arch, &opts, SchedulerKind::Ooo);
    let mut metric = opts.clone();
    metric.metric = flexer_sched::Metric::Latency;
    assert_ne!(
        fingerprint(&layer, &arch, &metric, SchedulerKind::Ooo),
        base
    );
    let mut tiling = opts.clone();
    tiling.tiling.max_ops += 1;
    assert_ne!(
        fingerprint(&layer, &arch, &tiling, SchedulerKind::Ooo),
        base
    );
    let mut flows = opts.clone();
    flows.dataflows.pop();
    assert_ne!(fingerprint(&layer, &arch, &flows, SchedulerKind::Ooo), base);
    let mut resident = opts;
    resident.residency.input_resident = true;
    assert_ne!(
        fingerprint(&layer, &arch, &resident, SchedulerKind::Ooo),
        base,
        "residency is winner-relevant and must re-key the entry"
    );
}
