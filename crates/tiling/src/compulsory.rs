//! Compulsory tile-set accounting: the per-tile byte sizes and compute
//! latencies a tiling implies *before* any schedule exists.
//!
//! Every legal schedule of a tiled layer must load each distinct input
//! and weight tile from DRAM at least once and store each output tile
//! at least once (the compulsory traffic), and must run every tiled
//! convolution to completion. These quantities depend only on the
//! (layer, tiling) pair — not on the dataflow or the scheduler — so the
//! search layer uses them to derive admissible lower bounds on latency
//! and transfer without building a DFG or running a scheduler.

use crate::factors::{input_extent, TilingFactors};
use crate::residency::Residency;
use crate::tile::TileKind;
use flexer_arch::{ConvTileDims, PerfModel};
use flexer_model::ConvLayer;

/// Byte sizes of every distinct tile of a tiled layer, grouped by kind.
///
/// Index math matches [`crate::Dfg::tile_bytes`]: inputs at
/// `c * spatial + s`, weights at `k * c_tiles + c`, outputs at
/// `k * spatial + s`. Grouped layers only materialize the diagonal
/// `k == c` weight tiles (an off-diagonal channel-tile pair shares no
/// group), stored at index `k`. [`crate::Dfg::build`] delegates to
/// [`CompulsoryTiles::compute`], so the bound accounting and the
/// scheduler see identical sizes by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompulsoryTiles {
    in_bytes: Vec<u64>,
    wt_bytes: Vec<u64>,
    ot_bytes: Vec<u64>,
}

impl CompulsoryTiles {
    /// Computes the per-tile byte sizes of `layer` tiled by `factors`
    /// with `elem`-byte elements.
    #[must_use]
    pub fn compute(layer: &ConvLayer, factors: &TilingFactors, elem: u64) -> Self {
        let (kt, ct, st) = (factors.k(), factors.c(), factors.spatial());
        let grouped = layer.kind().is_grouped();
        let mut in_bytes = vec![0u64; (ct * st) as usize];
        let mut wt_bytes = vec![0u64; (if grouped { kt } else { kt * ct }) as usize];
        let mut ot_bytes = vec![0u64; (kt * st) as usize];
        let spatial_dims: Vec<(u32, u32)> = (0..st)
            .map(|s| (s / factors.w(), s % factors.w()))
            .collect();
        for c in 0..ct {
            let cc = u64::from(factors.c_extent(layer, c));
            for (s, &(sh, sw)) in spatial_dims.iter().enumerate() {
                let (h0, he) = factors.h_range(layer, sh);
                let (w0, we) = factors.w_range(layer, sw);
                let ih = u64::from(input_extent(
                    h0,
                    he,
                    layer.stride(),
                    layer.kernel_h(),
                    layer.padding(),
                    layer.in_height(),
                ));
                let iw = u64::from(input_extent(
                    w0,
                    we,
                    layer.stride(),
                    layer.kernel_w(),
                    layer.padding(),
                    layer.in_width(),
                ));
                in_bytes[(c * st) as usize + s] = cc * ih * iw * elem;
            }
        }
        let taps = u64::from(layer.kernel_h()) * u64::from(layer.kernel_w());
        for k in 0..kt {
            let kc = u64::from(factors.k_extent(layer, k));
            if grouped {
                // One K/G x C/G weight block per covered group; the
                // dense kc * cc product would overcount by the number
                // of groups in the tile.
                wt_bytes[k as usize] = u64::from(factors.group_extent(layer, k))
                    * u64::from(layer.out_channels_per_group())
                    * u64::from(layer.in_channels_per_group())
                    * taps
                    * elem;
            } else {
                for c in 0..ct {
                    let cc = u64::from(factors.c_extent(layer, c));
                    wt_bytes[(k * ct + c) as usize] = kc * cc * taps * elem;
                }
            }
            for (s, &(sh, sw)) in spatial_dims.iter().enumerate() {
                let he = u64::from(factors.h_range(layer, sh).1);
                let we = u64::from(factors.w_range(layer, sw).1);
                ot_bytes[(k * st) as usize + s] = kc * he * we * elem;
            }
        }
        Self {
            in_bytes,
            wt_bytes,
            ot_bytes,
        }
    }

    /// Sum of the byte sizes of all distinct tiles of `kind`.
    #[must_use]
    pub fn kind_bytes(&self, kind: TileKind) -> u64 {
        match kind {
            TileKind::Input => self.in_bytes.iter().sum(),
            TileKind::Weight => self.wt_bytes.iter().sum(),
            TileKind::Output => self.ot_bytes.iter().sum(),
        }
    }

    /// Total compulsory DRAM traffic in bytes: each distinct input and
    /// weight tile loaded once, each output tile stored once.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.in_bytes
            .iter()
            .chain(&self.wt_bytes)
            .chain(&self.ot_bytes)
            .fold(0u64, |acc, &b| acc.saturating_add(b))
    }

    /// Compulsory *DRAM* traffic under a residency plan: a resident
    /// input tensor arrives on-chip (its tile loads are gathers, zero
    /// DRAM bytes) and a resident output tensor stays on-chip (its
    /// final stores are scatters, zero DRAM bytes); weights always
    /// round-trip through DRAM. With residency off this equals
    /// [`CompulsoryTiles::total_bytes`].
    #[must_use]
    pub fn dram_bytes(&self, residency: Residency) -> u64 {
        let mut total = self.kind_bytes(TileKind::Weight);
        if !residency.input_resident {
            total = total.saturating_add(self.kind_bytes(TileKind::Input));
        }
        if !residency.output_resident {
            total = total.saturating_add(self.kind_bytes(TileKind::Output));
        }
        total
    }

    /// Byte sizes of every compulsory transfer (one per distinct tile),
    /// in tile-index order.
    pub fn transfer_sizes(&self) -> impl Iterator<Item = u64> + '_ {
        self.in_bytes
            .iter()
            .chain(&self.wt_bytes)
            .chain(&self.ot_bytes)
            .copied()
    }

    /// Byte sizes of every distinct tile of `kind`, in tile-index
    /// order.
    pub fn kind_transfer_sizes(&self, kind: TileKind) -> impl Iterator<Item = u64> + '_ {
        match kind {
            TileKind::Input => &self.in_bytes,
            TileKind::Weight => &self.wt_bytes,
            TileKind::Output => &self.ot_bytes,
        }
        .iter()
        .copied()
    }

    /// Decomposes into the `(input, weight, output)` byte vectors.
    pub(crate) fn into_parts(self) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
        (self.in_bytes, self.wt_bytes, self.ot_bytes)
    }
}

/// Aggregate compute-latency terms of a tiled layer, as consumed by
/// [`flexer_arch::PerfModel::packed_compute_cycles`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputeEnvelope {
    /// Summed latency of every tiled convolution.
    pub total_cycles: u64,
    /// Longest single tiled convolution.
    pub max_op_cycles: u64,
    /// Longest dependency chain: the slowest partial-sum accumulation
    /// chain, i.e. `max over (k, s) of sum over c` of the op latencies.
    pub chain_cycles: u64,
}

/// Computes the compute envelope of `layer` tiled by `factors` under
/// `perf`. Dataflow-independent: the op multiset and the psum chains
/// are fixed by the tiling alone.
///
/// Grouped layers contribute one operation per *diagonal* channel
/// tile (`k == c`) with no partial-sum chain — each output channel's
/// accumulation completes within its group — so every chain is a
/// single operation.
#[must_use]
pub fn compute_envelope(
    layer: &ConvLayer,
    factors: &TilingFactors,
    perf: &dyn PerfModel,
) -> ComputeEnvelope {
    let (kt, ct) = (factors.k(), factors.c());
    let mut total = 0u64;
    let mut max_op = 0u64;
    let mut chain_max = 0u64;
    if layer.kind().is_grouped() {
        for k in 0..kt {
            let gi = factors.group_extent(layer, k);
            for sh in 0..factors.h() {
                let he = factors.h_range(layer, sh).1;
                for sw in 0..factors.w() {
                    let we = factors.w_range(layer, sw).1;
                    let dims = ConvTileDims {
                        out_channels: layer.out_channels_per_group(),
                        in_channels: layer.in_channels_per_group(),
                        out_height: he,
                        out_width: we,
                        kernel_h: layer.kernel_h(),
                        kernel_w: layer.kernel_w(),
                    };
                    let cycles = perf.grouped_conv_cycles(gi, &dims);
                    total = total.saturating_add(cycles);
                    max_op = max_op.max(cycles);
                    chain_max = chain_max.max(cycles);
                }
            }
        }
        return ComputeEnvelope {
            total_cycles: total,
            max_op_cycles: max_op,
            chain_cycles: chain_max,
        };
    }
    for k in 0..kt {
        let kc = factors.k_extent(layer, k);
        for sh in 0..factors.h() {
            let he = factors.h_range(layer, sh).1;
            for sw in 0..factors.w() {
                let we = factors.w_range(layer, sw).1;
                let mut chain = 0u64;
                for c in 0..ct {
                    let dims = ConvTileDims {
                        out_channels: kc,
                        in_channels: factors.c_extent(layer, c),
                        out_height: he,
                        out_width: we,
                        kernel_h: layer.kernel_h(),
                        kernel_w: layer.kernel_w(),
                    };
                    let cycles = perf.conv_cycles(&dims);
                    total = total.saturating_add(cycles);
                    max_op = max_op.max(cycles);
                    chain = chain.saturating_add(cycles);
                }
                chain_max = chain_max.max(chain);
            }
        }
    }
    ComputeEnvelope {
        total_cycles: total,
        max_op_cycles: max_op,
        chain_cycles: chain_max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::Dataflow;
    use crate::dfg::Dfg;
    use flexer_arch::{ArchConfig, ArchPreset, SystolicModel};

    fn setup(k: u32, c: u32, h: u32, w: u32) -> (ConvLayer, TilingFactors, ArchConfig) {
        let layer = ConvLayer::new("t", 48, 14, 14, 40).unwrap();
        let factors = TilingFactors::normalized(&layer, k, c, h, w);
        (layer, factors, ArchConfig::preset(ArchPreset::Arch1))
    }

    #[test]
    fn tile_bytes_match_the_dfg() {
        let (layer, factors, arch) = setup(3, 2, 2, 2);
        let perf = SystolicModel::new(&arch);
        let tiles = CompulsoryTiles::compute(&layer, &factors, arch.element_size().bytes());
        let dfg = Dfg::build(&layer, factors, Dataflow::Kcs, &perf, &arch).unwrap();
        for kind in [TileKind::Input, TileKind::Weight, TileKind::Output] {
            assert_eq!(tiles.kind_bytes(kind), dfg.unique_bytes(kind), "{kind:?}");
        }
        for tile in dfg.tiles() {
            assert!(dfg.tile_bytes(tile) > 0, "{tile}");
        }
        assert_eq!(
            tiles.total_bytes(),
            dfg.unique_bytes(TileKind::Input)
                + dfg.unique_bytes(TileKind::Weight)
                + dfg.unique_bytes(TileKind::Output)
        );
        assert_eq!(
            tiles.transfer_sizes().count(),
            dfg.tiles().count(),
            "one compulsory transfer per distinct tile"
        );
    }

    #[test]
    fn envelope_matches_the_dfg_latencies() {
        let (layer, factors, arch) = setup(2, 3, 2, 2);
        let perf = SystolicModel::new(&arch);
        let env = compute_envelope(&layer, &factors, &perf);
        let dfg = Dfg::build(&layer, factors, Dataflow::Csk, &perf, &arch).unwrap();
        let total: u64 = dfg.ops().iter().map(|op| op.latency()).sum();
        let max_op = dfg.ops().iter().map(|op| op.latency()).max().unwrap();
        assert_eq!(env.total_cycles, total);
        assert_eq!(env.max_op_cycles, max_op);
        // Chains run over c at fixed (k, s): walk each chain in the DFG.
        let mut chain_max = 0u64;
        for start in dfg.initial_ready() {
            let mut chain = dfg.op(start).latency();
            let mut cur = start;
            while let Some(next) = dfg.succ(cur) {
                chain += dfg.op(next).latency();
                cur = next;
            }
            chain_max = chain_max.max(chain);
        }
        assert_eq!(env.chain_cycles, chain_max);
        assert!(env.chain_cycles <= env.total_cycles);
        assert!(env.max_op_cycles <= env.chain_cycles);
    }

    #[test]
    fn envelope_is_dataflow_independent_by_construction() {
        let (layer, factors, arch) = setup(2, 2, 2, 1);
        let perf = SystolicModel::new(&arch);
        let env = compute_envelope(&layer, &factors, &perf);
        for df in Dataflow::all() {
            let dfg = Dfg::build(&layer, factors, df, &perf, &arch).unwrap();
            let total: u64 = dfg.ops().iter().map(|op| op.latency()).sum();
            assert_eq!(env.total_cycles, total, "{df}");
        }
    }
}
