//! Loop orders ("dataflows") over the tiled iteration space.

use crate::tile::TileKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the six loop orders over the three tiled dimensions: output
/// channels (`K`), input channels (`C`) and linearized output spatial
/// position (`S`).
///
/// The variant name lists the loops outermost-first; e.g.
/// [`Dataflow::Ksc`] iterates `for k { for s { for c { ... } } }`.
/// The innermost loop determines which data type stays *stationary*
/// across consecutive operations (paper §1, citing Eyeriss):
///
/// * innermost `K` — input tiles `IN(c,s)` are reused: **input-stationary**;
/// * innermost `S` — weight tiles `WT(k,c)` are reused: **weight-stationary**;
/// * innermost `C` — output tiles `OT(k,s)` accumulate on-chip:
///   **output-stationary**.
///
/// # Examples
///
/// ```
/// use flexer_tiling::{Dataflow, TileKind};
///
/// assert_eq!(Dataflow::Csk.stationary(), TileKind::Input);
/// assert_eq!(Dataflow::Kcs.stationary(), TileKind::Weight);
/// assert_eq!(Dataflow::Ksc.stationary(), TileKind::Output);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Dataflow {
    /// `K` outer, `C` middle, `S` inner (weight-stationary).
    Kcs,
    /// `K` outer, `S` middle, `C` inner (output-stationary).
    Ksc,
    /// `C` outer, `K` middle, `S` inner (weight-stationary).
    Cks,
    /// `C` outer, `S` middle, `K` inner (input-stationary).
    Csk,
    /// `S` outer, `K` middle, `C` inner (output-stationary).
    Skc,
    /// `S` outer, `C` middle, `K` inner (input-stationary).
    Sck,
}

/// A loop dimension of the tiled iteration space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum LoopDim {
    /// Output-channel tiles.
    K,
    /// Input-channel tiles.
    C,
    /// Linearized spatial tiles.
    S,
}

impl Dataflow {
    /// All six loop orders.
    #[must_use]
    pub const fn all() -> [Dataflow; 6] {
        [
            Dataflow::Kcs,
            Dataflow::Ksc,
            Dataflow::Cks,
            Dataflow::Csk,
            Dataflow::Skc,
            Dataflow::Sck,
        ]
    }

    /// Loop dimensions outermost-first.
    pub(crate) const fn order(self) -> [LoopDim; 3] {
        match self {
            Dataflow::Kcs => [LoopDim::K, LoopDim::C, LoopDim::S],
            Dataflow::Ksc => [LoopDim::K, LoopDim::S, LoopDim::C],
            Dataflow::Cks => [LoopDim::C, LoopDim::K, LoopDim::S],
            Dataflow::Csk => [LoopDim::C, LoopDim::S, LoopDim::K],
            Dataflow::Skc => [LoopDim::S, LoopDim::K, LoopDim::C],
            Dataflow::Sck => [LoopDim::S, LoopDim::C, LoopDim::K],
        }
    }

    /// The data type kept stationary (maximally reused) by this loop
    /// order.
    #[must_use]
    pub const fn stationary(self) -> TileKind {
        match self.order()[2] {
            LoopDim::K => TileKind::Input,
            LoopDim::S => TileKind::Weight,
            LoopDim::C => TileKind::Output,
        }
    }
}

impl fmt::Display for Dataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Dataflow::Kcs => "KCS",
            Dataflow::Ksc => "KSC",
            Dataflow::Cks => "CKS",
            Dataflow::Csk => "CSK",
            Dataflow::Skc => "SKC",
            Dataflow::Sck => "SCK",
        };
        write!(f, "{name} ({}-stationary)", self.stationary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_distinct_orders() {
        let all = Dataflow::all();
        assert_eq!(all.len(), 6);
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.order(), b.order());
            }
        }
    }

    #[test]
    fn each_order_is_a_permutation() {
        for df in Dataflow::all() {
            let mut dims = df.order().to_vec();
            dims.sort_by_key(|d| match d {
                LoopDim::K => 0,
                LoopDim::C => 1,
                LoopDim::S => 2,
            });
            assert_eq!(dims, [LoopDim::K, LoopDim::C, LoopDim::S]);
        }
    }

    #[test]
    fn stationarity_classification() {
        // Two dataflows per stationary kind.
        use TileKind::*;
        let expect = [
            (Dataflow::Kcs, Weight),
            (Dataflow::Ksc, Output),
            (Dataflow::Cks, Weight),
            (Dataflow::Csk, Input),
            (Dataflow::Skc, Output),
            (Dataflow::Sck, Input),
        ];
        for (df, kind) in expect {
            assert_eq!(df.stationary(), kind, "{df}");
        }
    }

    #[test]
    fn display_names_stationarity() {
        assert_eq!(Dataflow::Csk.to_string(), "CSK (IN-stationary)");
    }
}
