//! Data-flow graphs of tiled convolutions.

use crate::compulsory::CompulsoryTiles;
use crate::dataflow::{Dataflow, LoopDim};
use crate::factors::TilingFactors;
use crate::op::{OpId, TiledOp};
use crate::residency::Residency;
use crate::tile::{TileId, TileKind};
use flexer_arch::{ArchConfig, ConvTileDims, PerfModel};
use flexer_model::ConvLayer;
use std::error::Error;
use std::fmt;

/// Hard cap on DFG size; a backstop far above any practical search
/// configuration.
const ABSOLUTE_MAX_OPS: u64 = 1 << 20;

/// Error returned when a [`Dfg`] cannot be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TilingError {
    /// The tiling produces more operations than the absolute cap.
    TooManyOps {
        /// Operations the tiling would produce.
        requested: u64,
        /// The maximum supported.
        max: u64,
    },
}

impl fmt::Display for TilingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TilingError::TooManyOps { requested, max } => {
                write!(
                    f,
                    "tiling produces {requested} operations, maximum is {max}"
                )
            }
        }
    }
}

impl Error for TilingError {}

/// The data-flow graph of one tiled layer (paper §3).
///
/// Nodes are tiled convolutions [`TiledOp`]; the only edges are the
/// partial-sum accumulation chains: `tCONV(k, c, s)` for `c > 0`
/// depends on `tCONV(k, c-1, s)`. Operation ids follow the *static
/// loop order* of the dataflow the graph was built for, so
/// `ops()[i..]` in id order is exactly the baseline loop-order
/// execution sequence, and the OoO scheduler uses id order only to
/// break ties deterministically.
///
/// The graph also carries the per-tile byte sizes, initial per-tile
/// operand reference counts and per-op compute latencies that the
/// schedulers and the memory manager consume.
///
/// # Examples
///
/// ```
/// use flexer_arch::{ArchConfig, ArchPreset, SystolicModel};
/// use flexer_model::ConvLayer;
/// use flexer_tiling::{Dataflow, Dfg, TilingFactors};
///
/// let layer = ConvLayer::new("c", 32, 16, 16, 32)?;
/// let arch = ArchConfig::preset(ArchPreset::Arch1);
/// let factors = TilingFactors::normalized(&layer, 2, 2, 2, 1);
/// let dfg = Dfg::build(&layer, factors, Dataflow::Csk, &SystolicModel::new(&arch), &arch)?;
/// assert_eq!(dfg.num_ops(), 8);
/// // Half the ops (c == 0) are initially ready.
/// assert_eq!(dfg.initial_ready().count(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Dfg {
    layer: ConvLayer,
    factors: TilingFactors,
    dataflow: Dataflow,
    ops: Vec<TiledOp>,
    pred: Vec<Option<OpId>>,
    succ: Vec<Option<OpId>>,
    in_bytes: Vec<u64>,
    wt_bytes: Vec<u64>,
    ot_bytes: Vec<u64>,
    residency: Residency,
}

impl Dfg {
    /// Builds the DFG of `layer` tiled by `factors`, with operation ids
    /// in the static loop order of `dataflow` and latencies from
    /// `perf`. Residency is off: every tensor round-trips through DRAM.
    ///
    /// # Errors
    ///
    /// Returns [`TilingError::TooManyOps`] if the tiling exceeds the
    /// absolute operation cap (2^20).
    pub fn build(
        layer: &ConvLayer,
        factors: TilingFactors,
        dataflow: Dataflow,
        perf: &dyn PerfModel,
        arch: &ArchConfig,
    ) -> Result<Self, TilingError> {
        Self::build_resident(layer, factors, dataflow, perf, arch, Residency::default())
    }

    /// Builds the DFG under a cross-layer residency plan: the
    /// schedulers lower resident input loads to on-chip gathers and
    /// resident final output stores to on-chip scatters.
    ///
    /// # Errors
    ///
    /// Returns [`TilingError::TooManyOps`] if the tiling exceeds the
    /// absolute operation cap (2^20).
    pub fn build_resident(
        layer: &ConvLayer,
        factors: TilingFactors,
        dataflow: Dataflow,
        perf: &dyn PerfModel,
        arch: &ArchConfig,
        residency: Residency,
    ) -> Result<Self, TilingError> {
        let grouped = layer.kind().is_grouped();
        let num_ops = factors.num_ops_for(layer);
        if num_ops > ABSOLUTE_MAX_OPS {
            return Err(TilingError::TooManyOps {
                requested: num_ops,
                max: ABSOLUTE_MAX_OPS,
            });
        }
        let num_ops = num_ops as usize;
        let (kt, ct, st) = (factors.k(), factors.c(), factors.spatial());
        let elem = arch.element_size().bytes();

        // Per-tile byte sizes (index math mirrors `tile_bytes`), shared
        // with the search layer's compulsory-traffic bound accounting.
        let (in_bytes, wt_bytes, ot_bytes) =
            CompulsoryTiles::compute(layer, &factors, elem).into_parts();
        let spatial_dims: Vec<(u32, u32)> = (0..st)
            .map(|s| {
                let (sh, sw) = (s / factors.w(), s % factors.w());
                (sh, sw)
            })
            .collect();

        // Enumerate ops in the dataflow's loop order.
        let order = dataflow.order();
        let extent = |dim: LoopDim| match dim {
            LoopDim::K => kt,
            LoopDim::C => ct,
            LoopDim::S => st,
        };
        let (d0, d1, d2) = (order[0], order[1], order[2]);
        let mut ops = Vec::with_capacity(num_ops);
        // (k, c, s) -> op id map used to wire the psum chains. Grouped
        // layers only materialize the diagonal (k == c), so their map
        // collapses to (k, s).
        let mut id_of = vec![OpId::new(0); num_ops];
        let id_index = |k: u32, c: u32, s: u32| {
            if grouped {
                (k * st + s) as usize
            } else {
                ((k * ct + c) * st + s) as usize
            }
        };
        for i0 in 0..extent(d0) {
            for i1 in 0..extent(d1) {
                for i2 in 0..extent(d2) {
                    let mut k = 0;
                    let mut c = 0;
                    let mut s = 0;
                    for (dim, i) in [(d0, i0), (d1, i1), (d2, i2)] {
                        match dim {
                            LoopDim::K => k = i,
                            LoopDim::C => c = i,
                            LoopDim::S => s = i,
                        }
                    }
                    // A grouped weight tensor is block-diagonal: weight
                    // tile WT(k, c) is all zeros off the diagonal, so
                    // only k == c produces an operation.
                    if grouped && k != c {
                        continue;
                    }
                    let id = OpId::new(ops.len() as u32);
                    let (sh, sw) = spatial_dims[s as usize];
                    let latency = if grouped {
                        let dims = ConvTileDims {
                            out_channels: layer.out_channels_per_group(),
                            in_channels: layer.in_channels_per_group(),
                            out_height: factors.h_range(layer, sh).1,
                            out_width: factors.w_range(layer, sw).1,
                            kernel_h: layer.kernel_h(),
                            kernel_w: layer.kernel_w(),
                        };
                        perf.grouped_conv_cycles(factors.group_extent(layer, k), &dims)
                    } else {
                        let dims = ConvTileDims {
                            out_channels: factors.k_extent(layer, k),
                            in_channels: factors.c_extent(layer, c),
                            out_height: factors.h_range(layer, sh).1,
                            out_width: factors.w_range(layer, sw).1,
                            kernel_h: layer.kernel_h(),
                            kernel_w: layer.kernel_w(),
                        };
                        perf.conv_cycles(&dims)
                    };
                    // Grouped ops accumulate no cross-tile psums: each
                    // output channel sees exactly one input-channel
                    // tile, so every op finalizes its output.
                    let needs_psum = !grouped && c > 0;
                    let is_final = grouped || c == ct - 1;
                    let op = TiledOp::new(id, k, c, s, needs_psum, is_final, latency);
                    id_of[id_index(k, c, s)] = id;
                    ops.push(op);
                }
            }
        }

        // Partial-sum chains: (k, c, s) depends on (k, c-1, s).
        let mut pred = vec![None; num_ops];
        let mut succ = vec![None; num_ops];
        for op in &ops {
            if op.needs_psum() {
                let p = id_of[id_index(op.k(), op.c() - 1, op.s())];
                pred[op.id().index()] = Some(p);
                succ[p.index()] = Some(op.id());
            }
        }

        Ok(Self {
            layer: layer.clone(),
            factors,
            dataflow,
            ops,
            pred,
            succ,
            in_bytes,
            wt_bytes,
            ot_bytes,
            residency,
        })
    }

    /// The residency plan the DFG was built under.
    #[must_use]
    pub fn residency(&self) -> Residency {
        self.residency
    }

    /// The layer this DFG tiles.
    #[must_use]
    pub fn layer(&self) -> &ConvLayer {
        &self.layer
    }

    /// The tiling factors the DFG was built with.
    #[must_use]
    pub fn factors(&self) -> TilingFactors {
        self.factors
    }

    /// The dataflow (loop order) the DFG was built for.
    #[must_use]
    pub fn dataflow(&self) -> Dataflow {
        self.dataflow
    }

    /// All operations, in static loop order (ascending [`OpId`]).
    #[must_use]
    pub fn ops(&self) -> &[TiledOp] {
        &self.ops
    }

    /// The operation with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this DFG.
    #[must_use]
    pub fn op(&self, id: OpId) -> &TiledOp {
        &self.ops[id.index()]
    }

    /// Number of operations.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// The partial-sum predecessor of `id`, if any.
    #[must_use]
    pub fn pred(&self, id: OpId) -> Option<OpId> {
        self.pred[id.index()]
    }

    /// The partial-sum successor of `id`, if any.
    #[must_use]
    pub fn succ(&self, id: OpId) -> Option<OpId> {
        self.succ[id.index()]
    }

    /// Operations with no unsatisfied dependency (paper Algorithm 1,
    /// line 15), in id order.
    pub fn initial_ready(&self) -> impl Iterator<Item = OpId> + '_ {
        self.ops
            .iter()
            .filter(|op| !op.needs_psum())
            .map(TiledOp::id)
    }

    /// Byte size of a tile.
    ///
    /// # Panics
    ///
    /// Panics if the tile indices are out of range for this DFG's
    /// tiling.
    #[must_use]
    pub fn tile_bytes(&self, tile: TileId) -> u64 {
        let st = self.factors.spatial();
        let ct = self.factors.c();
        match tile {
            TileId::Input { c, s } => self.in_bytes[(c * st + s) as usize],
            TileId::Weight { k, c } => {
                if self.layer.kind().is_grouped() {
                    // Grouped weights exist only on the diagonal.
                    debug_assert_eq!(k, c, "off-diagonal grouped weight tile");
                    self.wt_bytes[k as usize]
                } else {
                    self.wt_bytes[(k * ct + c) as usize]
                }
            }
            TileId::Output { k, s } => self.ot_bytes[(k * st + s) as usize],
        }
    }

    /// Number of operations that reference `tile` as an operand over
    /// the whole DFG (reads plus accumulation writes).
    #[must_use]
    pub fn initial_uses(&self, tile: TileId) -> u32 {
        if self.layer.kind().is_grouped() {
            // Diagonal-only ops: input c and output k tiles each meet
            // exactly one op per spatial tile; weights are still shared
            // across the spatial dimension.
            return match tile {
                TileId::Input { .. } | TileId::Output { .. } => 1,
                TileId::Weight { .. } => self.factors.spatial(),
            };
        }
        match tile {
            TileId::Input { .. } => self.factors.k(),
            TileId::Weight { .. } => self.factors.spatial(),
            TileId::Output { .. } => self.factors.c(),
        }
    }

    /// Sum of the byte sizes of all distinct tiles of `kind` — the
    /// amount an infinitely large on-chip buffer would transfer exactly
    /// once (the paper's Figure-10 "on-chip" reference).
    #[must_use]
    pub fn unique_bytes(&self, kind: TileKind) -> u64 {
        match kind {
            TileKind::Input => self.in_bytes.iter().sum(),
            TileKind::Weight => self.wt_bytes.iter().sum(),
            TileKind::Output => self.ot_bytes.iter().sum(),
        }
    }

    /// Multiply-accumulate count of one operation, from its tile
    /// extents.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this DFG.
    #[must_use]
    pub fn op_macs(&self, id: OpId) -> u64 {
        let op = self.op(id);
        let (sh, sw) = (op.s() / self.factors.w(), op.s() % self.factors.w());
        // Grouped channel connectivity is block-diagonal, not the dense
        // k_extent * c_extent cross product.
        let channel_macs = if self.layer.kind().is_grouped() {
            u64::from(self.factors.group_extent(&self.layer, op.k()))
                * u64::from(self.layer.out_channels_per_group())
                * u64::from(self.layer.in_channels_per_group())
        } else {
            u64::from(self.factors.k_extent(&self.layer, op.k()))
                * u64::from(self.factors.c_extent(&self.layer, op.c()))
        };
        channel_macs
            * u64::from(self.factors.h_range(&self.layer, sh).1)
            * u64::from(self.factors.w_range(&self.layer, sw).1)
            * u64::from(self.layer.kernel_h())
            * u64::from(self.layer.kernel_w())
    }

    /// All distinct tiles referenced by this DFG, in sorted order.
    pub fn tiles(&self) -> impl Iterator<Item = TileId> + '_ {
        let st = self.factors.spatial();
        let ct = self.factors.c();
        let kt = self.factors.k();
        let grouped = self.layer.kind().is_grouped();
        let inputs = (0..ct).flat_map(move |c| (0..st).map(move |s| TileId::Input { c, s }));
        // Grouped weight tensors are block-diagonal: only WT(k, k)
        // tiles exist.
        let weights = (0..kt).flat_map(move |k| {
            let cs = if grouped { k..=k } else { 0..=ct - 1 };
            cs.map(move |c| TileId::Weight { k, c })
        });
        let outputs = (0..kt).flat_map(move |k| (0..st).map(move |s| TileId::Output { k, s }));
        inputs.chain(weights).chain(outputs)
    }
}

impl fmt::Display for Dfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DFG of {} [{} / {}]: {} ops",
            self.layer.name(),
            self.factors,
            self.dataflow,
            self.ops.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_arch::{ArchPreset, SystolicModel};

    fn build(layer: &ConvLayer, k: u32, c: u32, h: u32, w: u32, dataflow: Dataflow) -> Dfg {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let factors = TilingFactors::normalized(layer, k, c, h, w);
        Dfg::build(layer, factors, dataflow, &SystolicModel::new(&arch), &arch).unwrap()
    }

    fn layer() -> ConvLayer {
        ConvLayer::new("t", 32, 16, 16, 32).unwrap()
    }

    #[test]
    fn op_count_matches_factors() {
        let l = layer();
        let dfg = build(&l, 2, 4, 2, 2, Dataflow::Kcs);
        assert_eq!(dfg.num_ops(), 2 * 4 * 4);
    }

    #[test]
    fn static_order_follows_dataflow() {
        let l = layer();
        // KCS: k outer, c middle, s inner.
        let dfg = build(&l, 2, 2, 2, 1, Dataflow::Kcs);
        let seq: Vec<(u32, u32, u32)> = dfg.ops().iter().map(|o| (o.k(), o.c(), o.s())).collect();
        assert_eq!(
            seq,
            [
                (0, 0, 0),
                (0, 0, 1),
                (0, 1, 0),
                (0, 1, 1),
                (1, 0, 0),
                (1, 0, 1),
                (1, 1, 0),
                (1, 1, 1),
            ]
        );
        // CSK: c outer, s middle, k inner.
        let dfg = build(&l, 2, 2, 2, 1, Dataflow::Csk);
        let seq: Vec<(u32, u32, u32)> = dfg.ops().iter().map(|o| (o.k(), o.c(), o.s())).collect();
        assert_eq!(
            seq,
            [
                (0, 0, 0),
                (1, 0, 0),
                (0, 0, 1),
                (1, 0, 1),
                (0, 1, 0),
                (1, 1, 0),
                (0, 1, 1),
                (1, 1, 1),
            ]
        );
    }

    #[test]
    fn psum_chains_connect_consecutive_c() {
        let l = layer();
        let dfg = build(&l, 1, 4, 1, 1, Dataflow::Kcs);
        // Single (k, s): a pure chain of 4 ops.
        assert_eq!(dfg.initial_ready().count(), 1);
        let mut cur = dfg.initial_ready().next().unwrap();
        let mut seen = 1;
        while let Some(next) = dfg.succ(cur) {
            assert_eq!(dfg.pred(next), Some(cur));
            assert_eq!(dfg.op(next).c(), dfg.op(cur).c() + 1);
            cur = next;
            seen += 1;
        }
        assert_eq!(seen, 4);
        assert!(dfg.op(cur).is_final());
    }

    #[test]
    fn final_flag_only_on_last_c() {
        let l = layer();
        let dfg = build(&l, 2, 3, 2, 2, Dataflow::Sck);
        for op in dfg.ops() {
            assert_eq!(op.is_final(), op.c() == 2, "{op}");
            assert_eq!(op.needs_psum(), op.c() > 0, "{op}");
        }
    }

    #[test]
    fn tile_sizes_partition_tensors() {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let l = ConvLayer::new("t", 48, 12, 12, 24).unwrap();
        let dfg = build(&l, 3, 2, 3, 2, Dataflow::Kcs);
        let elem = arch.element_size();
        // Weights and outputs partition exactly.
        assert_eq!(dfg.unique_bytes(TileKind::Weight), l.weight_bytes(elem));
        assert_eq!(dfg.unique_bytes(TileKind::Output), l.output_bytes(elem));
        // Input tiles overlap at halos, so they sum to >= the tensor.
        assert!(dfg.unique_bytes(TileKind::Input) >= l.input_bytes(elem));
    }

    #[test]
    fn pointwise_input_tiles_partition_exactly() {
        let l = flexer_model::ConvLayerBuilder::new("pw", 32, 8, 8, 16)
            .build()
            .unwrap();
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let dfg = build(&l, 2, 2, 2, 2, Dataflow::Kcs);
        assert_eq!(
            dfg.unique_bytes(TileKind::Input),
            l.input_bytes(arch.element_size())
        );
    }

    #[test]
    fn initial_uses_match_reference_counts() {
        let l = layer();
        let dfg = build(&l, 3, 2, 2, 2, Dataflow::Kcs);
        // Count actual operand references.
        use std::collections::BTreeMap;
        let mut counts: BTreeMap<TileId, u32> = BTreeMap::new();
        for op in dfg.ops() {
            for t in op.operands() {
                *counts.entry(t).or_default() += 1;
            }
        }
        for tile in dfg.tiles() {
            assert_eq!(
                dfg.initial_uses(tile),
                counts.get(&tile).copied().unwrap_or(0),
                "{tile}"
            );
        }
    }

    #[test]
    fn latencies_are_positive_and_uniform_for_uniform_tiles() {
        let l = layer();
        let dfg = build(&l, 2, 2, 2, 2, Dataflow::Kcs);
        let lat0 = dfg.ops()[0].latency();
        assert!(lat0 > 0);
        for op in dfg.ops() {
            assert_eq!(op.latency(), lat0);
        }
    }

    #[test]
    fn tiles_enumeration_is_complete_and_sorted() {
        let l = layer();
        let dfg = build(&l, 2, 2, 2, 1, Dataflow::Kcs);
        let tiles: Vec<_> = dfg.tiles().collect();
        assert_eq!(tiles.len(), (2 * 2 + 2 * 2 + 2 * 2) as usize);
        let mut sorted = tiles.clone();
        sorted.sort();
        assert_eq!(tiles, sorted);
    }

    #[test]
    fn oversized_tiling_rejected() {
        // Force a synthetic factors value beyond the cap via a large
        // layer and per-element tiling.
        let l = ConvLayer::new("big", 512, 128, 128, 512).unwrap();
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let factors = TilingFactors::normalized(&l, 512, 512, 128, 128);
        let err = Dfg::build(
            &l,
            factors,
            Dataflow::Kcs,
            &SystolicModel::new(&arch),
            &arch,
        )
        .unwrap_err();
        assert!(matches!(err, TilingError::TooManyOps { .. }));
    }

    fn grouped_layer(groups: u32) -> ConvLayer {
        flexer_model::ConvLayerBuilder::new("g", 32, 16, 16, 32)
            .kernel(3, 3)
            .padding(1)
            .groups(groups)
            .build()
            .unwrap()
    }

    #[test]
    fn grouped_dfg_is_diagonal_only() {
        let l = grouped_layer(8);
        let dfg = build(&l, 4, 4, 2, 2, Dataflow::Kcs);
        // t = 4 channel tiles, 4 spatial tiles: diagonal ops only.
        assert_eq!(dfg.num_ops(), 4 * 4);
        for op in dfg.ops() {
            assert_eq!(op.k(), op.c(), "{op}");
            assert!(!op.needs_psum(), "{op}");
            assert!(op.is_final(), "{op}");
            assert_eq!(dfg.pred(op.id()), None);
            assert_eq!(dfg.succ(op.id()), None);
        }
        // No psum chains: every op is initially ready.
        assert_eq!(dfg.initial_ready().count(), dfg.num_ops());
    }

    #[test]
    fn grouped_weight_tiles_partition_the_block_diagonal_tensor() {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let l = grouped_layer(8);
        let dfg = build(&l, 4, 4, 2, 2, Dataflow::Kcs);
        // unique_bytes must equal the layer's (group-reduced) weight
        // tensor, not the dense K*C cross product.
        assert_eq!(
            dfg.unique_bytes(TileKind::Weight),
            l.weight_bytes(arch.element_size())
        );
        // And the diagonal tiles must sum to the same.
        let from_tiles: u64 = dfg
            .tiles()
            .filter(|t| matches!(t, TileId::Weight { .. }))
            .map(|t| dfg.tile_bytes(t))
            .sum();
        assert_eq!(from_tiles, l.weight_bytes(arch.element_size()));
    }

    #[test]
    fn grouped_tiles_enumeration_matches_op_operands() {
        let l = grouped_layer(4);
        let dfg = build(&l, 2, 2, 2, 1, Dataflow::Csk);
        use std::collections::BTreeSet;
        let enumerated: BTreeSet<TileId> = dfg.tiles().collect();
        let referenced: BTreeSet<TileId> = dfg.ops().iter().flat_map(TiledOp::operands).collect();
        assert_eq!(enumerated, referenced);
    }

    #[test]
    fn grouped_initial_uses_match_reference_counts() {
        let l = grouped_layer(8);
        let dfg = build(&l, 4, 4, 2, 2, Dataflow::Sck);
        use std::collections::BTreeMap;
        let mut counts: BTreeMap<TileId, u32> = BTreeMap::new();
        for op in dfg.ops() {
            for t in op.operands() {
                *counts.entry(t).or_default() += 1;
            }
        }
        for tile in dfg.tiles() {
            assert_eq!(
                dfg.initial_uses(tile),
                counts.get(&tile).copied().unwrap_or(0),
                "{tile}"
            );
        }
    }

    #[test]
    fn grouped_op_macs_sum_to_layer_macs() {
        let l = grouped_layer(8);
        let dfg = build(&l, 4, 4, 2, 2, Dataflow::Kcs);
        let total: u64 = dfg.ops().iter().map(|o| dfg.op_macs(o.id())).sum();
        assert_eq!(total, l.macs());
    }

    #[test]
    fn depthwise_dfg_ops_are_all_independent() {
        let l = ConvLayer::depthwise("dw", 16, 8, 8, 1, 1).unwrap();
        let dfg = build(&l, 4, 1, 2, 2, Dataflow::Kcs);
        assert_eq!(dfg.num_ops(), 4 * 4);
        assert_eq!(dfg.initial_ready().count(), 16);
        let total: u64 = dfg.ops().iter().map(|o| dfg.op_macs(o.id())).sum();
        assert_eq!(total, l.macs());
    }

    #[test]
    fn matmul_dfg_matches_equivalent_pointwise_conv() {
        // Matmul lowers to pointwise conv geometry: same tiling must
        // produce a structurally identical DFG with equal latencies.
        let mm = ConvLayer::matmul("mm", 64, 32, 48).unwrap();
        let pw = flexer_model::ConvLayerBuilder::new("pw", 32, 64, 1, 48)
            .build()
            .unwrap();
        let a = build(&mm, 2, 2, 4, 1, Dataflow::Kcs);
        let b = build(&pw, 2, 2, 4, 1, Dataflow::Kcs);
        assert_eq!(a.num_ops(), b.num_ops());
        for (x, y) in a.ops().iter().zip(b.ops()) {
            assert_eq!((x.k(), x.c(), x.s()), (y.k(), y.c(), y.s()));
            assert_eq!(x.latency(), y.latency());
            assert_eq!(x.needs_psum(), y.needs_psum());
        }
        for tile in a.tiles() {
            assert_eq!(a.tile_bytes(tile), b.tile_bytes(tile), "{tile}");
        }
    }

    #[test]
    fn dfg_display_mentions_layer() {
        let l = layer();
        let dfg = build(&l, 1, 1, 1, 1, Dataflow::Kcs);
        assert!(dfg.to_string().contains("t"));
        assert!(dfg.to_string().contains("1 ops"));
    }
}
