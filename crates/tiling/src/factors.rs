//! Tiling factors and enumeration of viable tilings.

use flexer_arch::ArchConfig;
use flexer_model::ConvLayer;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// How many tiles each tiled dimension is split into.
///
/// The output-channel dimension `K` splits into `k` tiles, the
/// input-channel dimension `C` into `c` tiles, and the output spatial
/// extents into `h x w` tiles. Edge tiles are smaller when the extent
/// does not divide evenly; factors are *normalized* so that every tile
/// index is non-empty (requesting 5 tiles of a 12-element dimension
/// yields 4 tiles of 3).
///
/// # Examples
///
/// ```
/// use flexer_model::ConvLayer;
/// use flexer_tiling::TilingFactors;
///
/// let layer = ConvLayer::new("c", 64, 28, 28, 96)?;
/// let f = TilingFactors::normalized(&layer, 3, 1, 2, 2);
/// assert_eq!((f.k(), f.c(), f.h(), f.w()), (3, 1, 2, 2));
/// assert_eq!(f.num_ops(), 12);
/// # Ok::<(), flexer_model::LayerSpecError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TilingFactors {
    k: u32,
    c: u32,
    h: u32,
    w: u32,
}

/// Splits `extent` into at most `requested` tiles and returns the
/// normalized `(tile count, base tile size)`.
fn split(extent: u32, requested: u32) -> (u32, u32) {
    let requested = requested.clamp(1, extent);
    let base = extent.div_ceil(requested);
    (extent.div_ceil(base), base)
}

impl TilingFactors {
    /// Creates factors for `layer`, clamping each requested tile count
    /// to the dimension extent and normalizing away empty tiles.
    ///
    /// Grouped layers tile the *group* dimension: channel tiles must
    /// contain whole groups (a tile straddling a group boundary would
    /// couple unrelated channels), so both channel tile counts
    /// normalize to one shared count `t <= G` and tile `i` covers
    /// `group_extent(i)` whole groups.
    #[must_use]
    pub fn normalized(layer: &ConvLayer, k: u32, c: u32, h: u32, w: u32) -> Self {
        let (h, _) = split(layer.out_height(), h.max(1));
        let (w, _) = split(layer.out_width(), w.max(1));
        if layer.kind().is_grouped() {
            let (t, _) = split(layer.groups(), k.max(c).max(1));
            return Self { k: t, c: t, h, w };
        }
        let (k, _) = split(layer.out_channels(), k.max(1));
        let (c, _) = split(layer.in_channels(), c.max(1));
        Self { k, c, h, w }
    }

    /// Reconstructs factors from already-normalized raw counts, e.g.
    /// when decoding a persisted schedule record. The counts are taken
    /// verbatim (zeroes are clamped to 1); pair only with values that
    /// came out of [`TilingFactors::normalized`].
    #[must_use]
    pub fn from_raw(k: u32, c: u32, h: u32, w: u32) -> Self {
        Self {
            k: k.max(1),
            c: c.max(1),
            h: h.max(1),
            w: w.max(1),
        }
    }

    /// Number of output-channel tiles.
    #[must_use]
    pub const fn k(&self) -> u32 {
        self.k
    }

    /// Number of input-channel tiles.
    #[must_use]
    pub const fn c(&self) -> u32 {
        self.c
    }

    /// Number of spatial tiles along the output height.
    #[must_use]
    pub const fn h(&self) -> u32 {
        self.h
    }

    /// Number of spatial tiles along the output width.
    #[must_use]
    pub const fn w(&self) -> u32 {
        self.w
    }

    /// Number of linearized spatial tiles (`h * w`).
    #[must_use]
    pub const fn spatial(&self) -> u32 {
        self.h * self.w
    }

    /// Total number of tiled convolution operations over the *dense*
    /// iteration space (`k * c * h * w`). For grouped layers the DFG
    /// only materializes the diagonal `k == c` operations — use
    /// [`TilingFactors::num_ops_for`] for the actual operation count.
    #[must_use]
    pub const fn num_ops(&self) -> u64 {
        self.k as u64 * self.c as u64 * self.h as u64 * self.w as u64
    }

    /// Actual number of tiled operations the DFG builds for `layer`
    /// under these factors: `k * c * h * w` for dense/matmul layers,
    /// but only the diagonal `t * h * w` for grouped layers (an
    /// off-diagonal pair of channel tiles shares no group, so no
    /// operation exists for it).
    #[must_use]
    pub fn num_ops_for(&self, layer: &ConvLayer) -> u64 {
        if layer.kind().is_grouped() {
            self.k as u64 * self.h as u64 * self.w as u64
        } else {
            self.num_ops()
        }
    }

    /// Number of whole groups covered by channel tile `i` of a grouped
    /// layer (1 for dense/matmul layers, whose "group" is the whole
    /// channel space).
    #[must_use]
    pub fn group_extent(&self, layer: &ConvLayer, i: u32) -> u32 {
        if layer.kind().is_grouped() {
            dim_extent(layer.groups(), self.k, i)
        } else {
            1
        }
    }

    /// Extent of output-channel tile `i` for `layer`. Grouped layers
    /// scale whole-group tile extents by `K/G` so tiles never straddle
    /// a group boundary.
    #[must_use]
    pub fn k_extent(&self, layer: &ConvLayer, i: u32) -> u32 {
        if layer.kind().is_grouped() {
            dim_extent(layer.groups(), self.k, i) * layer.out_channels_per_group()
        } else {
            dim_extent(layer.out_channels(), self.k, i)
        }
    }

    /// Extent of input-channel tile `i` for `layer` (group-aligned for
    /// grouped layers, see [`TilingFactors::k_extent`]).
    #[must_use]
    pub fn c_extent(&self, layer: &ConvLayer, i: u32) -> u32 {
        if layer.kind().is_grouped() {
            dim_extent(layer.groups(), self.c, i) * layer.in_channels_per_group()
        } else {
            dim_extent(layer.in_channels(), self.c, i)
        }
    }

    /// Output rows covered by spatial-row tile `i` for `layer`:
    /// `(start, extent)`.
    #[must_use]
    pub fn h_range(&self, layer: &ConvLayer, i: u32) -> (u32, u32) {
        dim_range(layer.out_height(), self.h, i)
    }

    /// Output columns covered by spatial-column tile `i` for `layer`:
    /// `(start, extent)`.
    #[must_use]
    pub fn w_range(&self, layer: &ConvLayer, i: u32) -> (u32, u32) {
        dim_range(layer.out_width(), self.w, i)
    }
}

impl fmt::Display for TilingFactors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}·c{}·{}x{}", self.k, self.c, self.h, self.w)
    }
}

/// Extent of tile `i` when `extent` splits into `tiles` tiles.
fn dim_extent(extent: u32, tiles: u32, i: u32) -> u32 {
    dim_range(extent, tiles, i).1
}

/// `(start, extent)` of tile `i` when `extent` splits into `tiles`.
fn dim_range(extent: u32, tiles: u32, i: u32) -> (u32, u32) {
    debug_assert!(i < tiles, "tile index {i} out of {tiles}");
    let base = extent.div_ceil(tiles);
    let start = i * base;
    (start, base.min(extent - start))
}

/// Limits applied while enumerating tilings.
///
/// The paper explores "all viable tilings"; the defaults here cover the
/// same power-of-two-shaped space but bound the DFG size so full
/// networks finish in minutes instead of the paper's 20 hours (see
/// DESIGN.md §2). Enlarge the caps to widen the search.
///
/// # Examples
///
/// ```
/// let opts = flexer_tiling::TilingOptions {
///     max_ops: 512,
///     ..Default::default()
/// };
/// assert_eq!(opts.max_ops, 512);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TilingOptions {
    /// Candidate tile counts per channel dimension (clamped to the
    /// extent, deduplicated after normalization).
    pub channel_candidates: Vec<u32>,
    /// Candidate tile counts per spatial dimension.
    pub spatial_candidates: Vec<u32>,
    /// Upper bound on `k*c*h*w`; tilings with more operations are
    /// skipped.
    pub max_ops: u64,
    /// Upper bound on the number of tilings returned (smallest op
    /// counts first). `0` means unlimited.
    pub max_tilings: usize,
}

impl Default for TilingOptions {
    fn default() -> Self {
        Self {
            channel_candidates: vec![1, 2, 4, 8, 16, 32],
            spatial_candidates: vec![1, 2, 4, 8],
            max_ops: 1024,
            max_tilings: 48,
        }
    }
}

/// Enumerates all viable tilings of `layer` on `arch`.
///
/// A tiling is *viable* when one operation's working set — its input,
/// weight and output tile together — fits the shared on-chip buffer
/// (otherwise the operation could never execute) and its operation
/// count does not exceed [`TilingOptions::max_ops`].
///
/// Results are deduplicated after normalization and sorted by an
/// analytical quality estimate (see [`estimate_metric`]) so that, when
/// [`TilingOptions::max_tilings`] truncates the list, the survivors
/// are the likely winners of the `latency x transfer` search rather
/// than merely the coarsest tilings.
///
/// # Examples
///
/// ```
/// use flexer_arch::{ArchConfig, ArchPreset};
/// use flexer_model::ConvLayer;
/// use flexer_tiling::{enumerate_tilings, TilingOptions};
///
/// let layer = ConvLayer::new("c", 256, 28, 28, 256)?;
/// let arch = ArchConfig::preset(ArchPreset::Arch1);
/// let tilings = enumerate_tilings(&layer, &arch, &TilingOptions::default());
/// assert!(!tilings.is_empty());
/// // Every returned tiling's working set fits the 256 KiB buffer.
/// # Ok::<(), flexer_model::LayerSpecError>(())
/// ```
#[must_use]
pub fn enumerate_tilings(
    layer: &ConvLayer,
    arch: &ArchConfig,
    options: &TilingOptions,
) -> Vec<TilingFactors> {
    let mut seen = BTreeSet::new();
    let mut viable = Vec::new();

    for &k in &options.channel_candidates {
        for &c in &options.channel_candidates {
            for &h in &options.spatial_candidates {
                for &w in &options.spatial_candidates {
                    let f = TilingFactors::normalized(layer, k, c, h, w);
                    if !seen.insert(f) {
                        continue;
                    }
                    if f.num_ops_for(layer) > options.max_ops {
                        continue;
                    }
                    if working_set_bytes(layer, &f, arch) <= arch.spm_bytes() {
                        viable.push(f);
                    }
                }
            }
        }
    }

    let by_estimate = |a: &TilingFactors, b: &TilingFactors| {
        estimate_metric(layer, a, arch)
            .total_cmp(&estimate_metric(layer, b, arch))
            .then_with(|| a.num_ops().cmp(&b.num_ops()))
            .then_with(|| a.cmp(b))
    };
    viable.sort_by(by_estimate);
    if options.max_tilings > 0 && viable.len() > options.max_tilings {
        // Keep half the budget for the best analytical estimates and
        // half for the coarsest tilings: the estimate cannot see
        // reloads, and coarse tilings — whose large tiles minimize
        // mandatory traffic — are reliable low-transfer candidates the
        // estimate tends to undervalue.
        let est_half = options.max_tilings - options.max_tilings / 2;
        let mut rest = viable.split_off(est_half);
        rest.sort_by_key(|f| (f.num_ops_for(layer), *f));
        rest.truncate(options.max_tilings - est_half);
        viable.extend(rest);
        viable.sort_by(by_estimate);
    }
    viable
}

/// Analytically estimates the `latency x transfer` quality of a tiling
/// (lower is better), used only to *rank* viable tilings before
/// truncation:
///
/// * latency ∝ `MACs / parallelism`, where the achievable parallelism
///   is bounded by how many per-operation working sets fit the shared
///   buffer concurrently — tilings whose working set monopolizes the
///   buffer serialize the cores;
/// * transfer is lower-bounded by the sum of all distinct tile bytes
///   (every tile moves at least once; finer spatial tilings pay more
///   halo overlap).
///
/// The estimate ignores reloads and spills — those depend on the
/// schedule — but separates serializing from parallelizable tilings
/// and heavily-overlapping from compact ones, which is what the
/// truncation decision needs.
#[must_use]
pub fn estimate_metric(layer: &ConvLayer, f: &TilingFactors, arch: &ArchConfig) -> f64 {
    let ws = working_set_bytes(layer, f, arch).max(1);
    let fit = (arch.spm_bytes() / ws).max(1);
    let parallelism = u64::from(arch.cores())
        .min(fit)
        .min(f.num_ops_for(layer).max(1));
    let latency = layer.macs() as f64 / parallelism as f64;

    let elem = arch.element_size().bytes();
    let mut in_bytes = 0u64;
    for sh in 0..f.h() {
        let (h0, he) = f.h_range(layer, sh);
        let ih = u64::from(input_extent(
            h0,
            he,
            layer.stride(),
            layer.kernel_h(),
            layer.padding(),
            layer.in_height(),
        ));
        for sw in 0..f.w() {
            let (w0, we) = f.w_range(layer, sw);
            let iw = u64::from(input_extent(
                w0,
                we,
                layer.stride(),
                layer.kernel_w(),
                layer.padding(),
                layer.in_width(),
            ));
            in_bytes += u64::from(layer.in_channels()) * ih * iw * elem;
        }
    }
    let traffic = in_bytes
        + layer.weight_bytes(arch.element_size())
        + layer.output_bytes(arch.element_size());
    latency * traffic as f64
}

/// Byte size of the largest single-operation working set under `f`:
/// first input tile + first weight tile + first output tile (tile 0 is
/// always the largest since later tiles only shrink at the edges).
#[must_use]
pub(crate) fn working_set_bytes(layer: &ConvLayer, f: &TilingFactors, arch: &ArchConfig) -> u64 {
    let elem = arch.element_size().bytes();
    let kc = u64::from(f.k_extent(layer, 0));
    let cc = u64::from(f.c_extent(layer, 0));
    let (h0, he) = f.h_range(layer, 0);
    let (w0, we) = f.w_range(layer, 0);
    let ih = u64::from(input_extent(
        h0,
        he,
        layer.stride(),
        layer.kernel_h(),
        layer.padding(),
        layer.in_height(),
    ));
    let iw = u64::from(input_extent(
        w0,
        we,
        layer.stride(),
        layer.kernel_w(),
        layer.padding(),
        layer.in_width(),
    ));
    let input = cc * ih * iw * elem;
    let taps = u64::from(layer.kernel_h()) * u64::from(layer.kernel_w());
    // A grouped weight tile holds one K/G x C/G block per covered
    // group, not the dense kc x cc cross product.
    let weight = if layer.kind().is_grouped() {
        u64::from(f.group_extent(layer, 0))
            * u64::from(layer.out_channels_per_group())
            * u64::from(layer.in_channels_per_group())
            * taps
            * elem
    } else {
        kc * cc * taps * elem
    };
    let output = kc * u64::from(he) * u64::from(we) * elem;
    input + weight + output
}

/// Number of input rows (or columns) a spatial output range needs:
/// the rows `[start*stride - pad, (start+len-1)*stride - pad + kernel - 1]`
/// clamped to the stored input `[0, in_extent)`. Padding rows are not
/// stored and cost nothing.
#[must_use]
pub(crate) fn input_extent(
    out_start: u32,
    out_len: u32,
    stride: u32,
    kernel: u32,
    pad: u32,
    in_extent: u32,
) -> u32 {
    debug_assert!(out_len > 0);
    let first = (out_start * stride) as i64 - i64::from(pad);
    let last = ((out_start + out_len - 1) * stride + kernel - 1) as i64 - i64::from(pad);
    let first = first.max(0);
    let last = last.min(i64::from(in_extent) - 1);
    if last < first {
        0
    } else {
        (last - first + 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_arch::ArchPreset;
    use flexer_model::ConvLayerBuilder;

    fn layer(c: u32, hw: u32, k: u32) -> ConvLayer {
        ConvLayer::new("t", c, hw, hw, k).unwrap()
    }

    #[test]
    fn normalization_removes_empty_tiles() {
        let l = layer(12, 12, 12);
        let f = TilingFactors::normalized(&l, 5, 5, 5, 5);
        // 12 split into 5 -> base 3 -> 4 non-empty tiles.
        assert_eq!((f.k(), f.c(), f.h(), f.w()), (4, 4, 4, 4));
    }

    #[test]
    fn requests_clamp_to_extent() {
        let l = layer(3, 8, 2);
        let f = TilingFactors::normalized(&l, 100, 100, 100, 100);
        assert_eq!((f.k(), f.c()), (2, 3));
        assert_eq!((f.h(), f.w()), (8, 8));
    }

    #[test]
    fn extents_sum_to_dimension() {
        let l = layer(13, 17, 7);
        let f = TilingFactors::normalized(&l, 3, 4, 5, 6);
        let ks: u32 = (0..f.k()).map(|i| f.k_extent(&l, i)).sum();
        let cs: u32 = (0..f.c()).map(|i| f.c_extent(&l, i)).sum();
        let hs: u32 = (0..f.h()).map(|i| f.h_range(&l, i).1).sum();
        let ws: u32 = (0..f.w()).map(|i| f.w_range(&l, i).1).sum();
        assert_eq!(ks, 7);
        assert_eq!(cs, 13);
        assert_eq!(hs, 17);
        assert_eq!(ws, 17);
    }

    #[test]
    fn ranges_are_contiguous() {
        let l = layer(8, 19, 8);
        let f = TilingFactors::normalized(&l, 1, 1, 4, 4);
        let mut next = 0;
        for i in 0..f.h() {
            let (start, len) = f.h_range(&l, i);
            assert_eq!(start, next);
            assert!(len > 0);
            next = start + len;
        }
        assert_eq!(next, 19);
    }

    #[test]
    fn input_extent_same_conv() {
        // 3x3 stride-1 pad-1 over 8 rows: a 4-row interior output tile
        // needs 4+2 input rows minus clamping at borders.
        assert_eq!(input_extent(0, 4, 1, 3, 1, 8), 5); // top: pad row free
        assert_eq!(input_extent(4, 4, 1, 3, 1, 8), 5); // bottom: pad row free
        assert_eq!(input_extent(0, 8, 1, 3, 1, 8), 8); // full extent
        assert_eq!(input_extent(2, 4, 1, 3, 1, 8), 6); // interior: both halos
    }

    #[test]
    fn input_extent_strided() {
        // 7x7 stride-2 pad-3 (ResNet stem), 224 input, 112 output.
        assert_eq!(input_extent(0, 112, 2, 7, 3, 224), 224);
        // First half of the output needs the first ~113 input rows.
        assert_eq!(input_extent(0, 56, 2, 7, 3, 224), 114);
    }

    #[test]
    fn input_extent_pointwise() {
        assert_eq!(input_extent(3, 4, 1, 1, 0, 16), 4);
    }

    #[test]
    fn enumeration_filters_oversized_working_sets() {
        let arch = ArchConfig::preset(ArchPreset::Arch1); // 256 KiB
        let l = layer(512, 28, 512);
        let tilings = enumerate_tilings(&l, &arch, &TilingOptions::default());
        assert!(!tilings.is_empty());
        for f in &tilings {
            assert!(working_set_bytes(&l, f, &arch) <= arch.spm_bytes());
        }
        // The untiled layer (1,1,1,1) must have been rejected: the full
        // working set is ~1 MiB.
        assert!(!tilings.contains(&TilingFactors::normalized(&l, 1, 1, 1, 1)));
    }

    #[test]
    fn enumeration_allows_untiled_small_layers() {
        let arch = ArchConfig::preset(ArchPreset::Arch4); // 512 KiB
        let l = layer(16, 14, 16);
        let tilings = enumerate_tilings(&l, &arch, &TilingOptions::default());
        assert!(tilings.contains(&TilingFactors::normalized(&l, 1, 1, 1, 1)));
    }

    #[test]
    fn estimate_prefers_parallelizable_tilings() {
        let arch = ArchConfig::preset(ArchPreset::Arch5); // 4 cores
        let l = layer(512, 28, 512);
        // A tiling whose working set monopolizes the buffer serializes
        // the four cores; a finer one that fits four working sets is
        // estimated ~4x faster at comparable traffic.
        let coarse = TilingFactors::normalized(&l, 4, 8, 1, 1);
        let fine = TilingFactors::normalized(&l, 8, 8, 2, 2);
        assert!(estimate_metric(&l, &fine, &arch) < estimate_metric(&l, &coarse, &arch));
    }

    #[test]
    fn estimate_penalizes_halo_overlap() {
        let arch = ArchConfig::preset(ArchPreset::Arch5);
        let l = layer(64, 56, 64);
        // Same parallelism, but 8x8 spatial tiles of a 3x3 conv pay
        // far more input halo than 2x2 tiles.
        let compact = TilingFactors::normalized(&l, 8, 1, 2, 2);
        let shredded = TilingFactors::normalized(&l, 8, 1, 8, 8);
        assert!(estimate_metric(&l, &compact, &arch) < estimate_metric(&l, &shredded, &arch));
    }

    #[test]
    fn truncation_keeps_best_estimates() {
        let arch = ArchConfig::preset(ArchPreset::Arch5);
        let l = layer(256, 28, 256);
        let all = enumerate_tilings(
            &l,
            &arch,
            &TilingOptions {
                max_tilings: 0,
                ..Default::default()
            },
        );
        let kept = enumerate_tilings(
            &l,
            &arch,
            &TilingOptions {
                max_tilings: 5,
                ..Default::default()
            },
        );
        assert_eq!(kept.len(), 5);
        // Half the budget keeps the best estimates...
        for f in &all[..3] {
            assert!(kept.contains(f), "{f} missing from truncation");
        }
        // ...and the rest keeps the coarsest tilings.
        let coarsest = all.iter().map(TilingFactors::num_ops).min().unwrap();
        assert!(kept.iter().any(|f| f.num_ops() == coarsest));
        // The full list is sorted by ascending estimate.
        for pair in all.windows(2) {
            assert!(estimate_metric(&l, &pair[0], &arch) <= estimate_metric(&l, &pair[1], &arch));
        }
    }

    #[test]
    fn enumeration_respects_max_ops() {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let l = layer(256, 56, 256);
        let opts = TilingOptions {
            max_ops: 64,
            ..Default::default()
        };
        for f in enumerate_tilings(&l, &arch, &opts) {
            assert!(f.num_ops() <= 64);
        }
    }

    #[test]
    fn enumeration_sorted_and_truncated() {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let l = layer(128, 28, 128);
        let opts = TilingOptions {
            max_tilings: 5,
            ..Default::default()
        };
        let tilings = enumerate_tilings(&l, &arch, &opts);
        assert!(tilings.len() <= 5);
        for pair in tilings.windows(2) {
            assert!(estimate_metric(&l, &pair[0], &arch) <= estimate_metric(&l, &pair[1], &arch));
        }
    }

    #[test]
    fn enumeration_is_deterministic() {
        let arch = ArchConfig::preset(ArchPreset::Arch5);
        let l = layer(64, 56, 64);
        let a = enumerate_tilings(&l, &arch, &TilingOptions::default());
        let b = enumerate_tilings(&l, &arch, &TilingOptions::default());
        assert_eq!(a, b);
    }

    fn grouped(c: u32, hw: u32, k: u32, g: u32) -> ConvLayer {
        ConvLayerBuilder::new("g", c, hw, hw, k)
            .kernel(3, 3)
            .padding(1)
            .groups(g)
            .build()
            .unwrap()
    }

    #[test]
    fn grouped_factors_share_one_channel_tile_count() {
        let l = grouped(8, 8, 12, 4);
        // Asymmetric channel requests collapse to one group tiling.
        let f = TilingFactors::normalized(&l, 4, 2, 1, 1);
        assert_eq!(f.k(), f.c());
        assert!(f.k() <= 4, "at most one tile per group");
    }

    #[test]
    fn grouped_extents_are_group_aligned() {
        // Regression: computing dim_extent over K directly (12 into 2
        // tiles -> 6,6) happens to align here, but over C (8 into 2 ->
        // 4,4) vs groups-of-2 it must scale whole groups. Check every
        // tile's extent is a whole number of groups on both axes.
        let l = grouped(8, 8, 12, 4);
        let f = TilingFactors::normalized(&l, 3, 3, 1, 1);
        let kpg = l.out_channels_per_group();
        let cpg = l.in_channels_per_group();
        let mut k_sum = 0;
        let mut c_sum = 0;
        let mut g_sum = 0;
        for i in 0..f.k() {
            assert_eq!(f.k_extent(&l, i) % kpg, 0, "tile {i} straddles a group");
            assert_eq!(f.c_extent(&l, i) % cpg, 0, "tile {i} straddles a group");
            assert_eq!(f.k_extent(&l, i) / kpg, f.group_extent(&l, i));
            k_sum += f.k_extent(&l, i);
            c_sum += f.c_extent(&l, i);
            g_sum += f.group_extent(&l, i);
        }
        assert_eq!(k_sum, 12);
        assert_eq!(c_sum, 8);
        assert_eq!(g_sum, 4);
    }

    #[test]
    fn depthwise_tiles_clamp_to_group_count() {
        let l = grouped(16, 8, 16, 16);
        let f = TilingFactors::normalized(&l, 100, 100, 1, 1);
        assert_eq!((f.k(), f.c()), (16, 16));
        assert_eq!(f.k_extent(&l, 0), 1);
    }

    #[test]
    fn grouped_op_count_is_diagonal_only() {
        let l = grouped(8, 8, 8, 4);
        let f = TilingFactors::normalized(&l, 4, 4, 2, 2);
        assert_eq!(f.num_ops(), 4 * 4 * 2 * 2, "dense iteration space");
        assert_eq!(f.num_ops_for(&l), 4 * 2 * 2, "diagonal ops only");
        // Dense layers are unchanged.
        let d = layer(8, 8, 8);
        let fd = TilingFactors::normalized(&d, 4, 4, 2, 2);
        assert_eq!(fd.num_ops_for(&d), fd.num_ops());
    }

    #[test]
    fn grouped_working_set_counts_block_diagonal_weights() {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let g = grouped(32, 8, 32, 8);
        let f = TilingFactors::normalized(&g, 1, 1, 1, 1);
        // Equivalent dense geometry for comparison.
        let d = layer(32, 8, 32);
        let fd = TilingFactors::normalized(&d, 1, 1, 1, 1);
        let ws_g = working_set_bytes(&g, &f, &arch);
        let ws_d = working_set_bytes(&d, &fd, &arch);
        // Same activations; weights shrink by the group factor.
        let delta = d.weight_bytes(arch.element_size()) - g.weight_bytes(arch.element_size());
        assert_eq!(ws_d - ws_g, delta);
    }

    #[test]
    fn grouped_enumeration_respects_max_ops_on_actual_ops() {
        // Regression: filtering on the dense k*c*h*w count would
        // reject fine group tilings whose actual diagonal op count is
        // within budget.
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let l = grouped(64, 28, 64, 64);
        let opts = TilingOptions {
            max_ops: 64,
            ..Default::default()
        };
        let tilings = enumerate_tilings(&l, &arch, &opts);
        assert!(!tilings.is_empty());
        for f in &tilings {
            assert!(f.num_ops_for(&l) <= 64);
        }
        // At least one tiling with more than 8 group tiles survives
        // (its dense cross-product count would exceed the cap).
        assert!(
            tilings.iter().any(|f| f.k() >= 16 && f.num_ops() > 64),
            "diagonal-count filter should admit fine group tilings: {tilings:?}"
        );
    }

    #[test]
    fn strided_layer_working_set_uses_halo() {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let l = ConvLayerBuilder::new("s", 64, 56, 56, 64)
            .kernel(3, 3)
            .stride(2)
            .padding(1)
            .build()
            .unwrap();
        let f = TilingFactors::normalized(&l, 1, 1, 2, 2);
        // Output 28x28 -> 14-row tiles need (14-1)*2+3 = 29 input rows
        // (minus border clamping).
        let ws = working_set_bytes(&l, &f, &arch);
        assert!(ws > 0);
        let ih = input_extent(0, 14, 2, 3, 1, 56);
        assert_eq!(ih, 28);
    }
}
