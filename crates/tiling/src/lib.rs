//! Tiled-convolution workload generation.
//!
//! A DNN layer is too large to fit a mobile NPU's on-chip memory, so
//! its computation is split into *tiles* (paper §2.2, Figure 3). This
//! crate turns a [`flexer_model::ConvLayer`] into the workload the
//! schedulers consume:
//!
//! * [`TileId`]/[`TileKind`] — identities of input (`tIN`), weight
//!   (`tWT`) and output/partial-sum (`tOT`) data tiles;
//! * [`TilingFactors`] — how many tiles each dimension is split into,
//!   with [`enumerate_tilings`] producing all viable tilings for a
//!   layer on a given architecture;
//! * [`Dataflow`] — the six loop orders over output channels (`K`),
//!   input channels (`C`) and output spatial position (`S`), and their
//!   stationarity classification;
//! * [`Dfg`] — the data-flow graph of tiled convolutions
//!   `tCONV: OT <- IN, WT[, PS]`, with partial-sum dependency chains,
//!   per-tile byte sizes, use counts and per-op latencies.
//!
//! # Examples
//!
//! ```
//! use flexer_arch::{ArchConfig, ArchPreset, SystolicModel};
//! use flexer_model::ConvLayer;
//! use flexer_tiling::{enumerate_tilings, Dataflow, Dfg, TilingOptions};
//!
//! let layer = ConvLayer::new("conv", 64, 28, 28, 64)?;
//! let arch = ArchConfig::preset(ArchPreset::Arch1);
//! let tilings = enumerate_tilings(&layer, &arch, &TilingOptions::default());
//! assert!(!tilings.is_empty());
//!
//! let model = SystolicModel::new(&arch);
//! let dfg = Dfg::build(&layer, tilings[0], Dataflow::Csk, &model, &arch)?;
//! assert!(dfg.num_ops() >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compulsory;
mod dataflow;
mod dfg;
mod factors;
mod op;
mod residency;
mod tile;

pub use compulsory::{compute_envelope, CompulsoryTiles, ComputeEnvelope};
pub use dataflow::Dataflow;
pub use dfg::{Dfg, TilingError};
pub use factors::{enumerate_tilings, estimate_metric, TilingFactors, TilingOptions};
pub use op::{OpId, TiledOp};
pub use residency::Residency;
pub use tile::{TileId, TileKind};
