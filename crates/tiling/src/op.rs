//! Tiled convolution operations.

use crate::tile::TileId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a tiled convolution within one [`crate::Dfg`].
///
/// Op ids are dense indices into the DFG's operation list; the id order
/// is the *static loop order* of the dataflow the DFG was built for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId(u32);

impl OpId {
    /// Creates an op id from its dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// The dense index of this op in its DFG.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tCONV{}", self.0)
    }
}

/// One tiled convolution `tCONV: OT <- IN, WT[, PS]` (paper §2.2).
///
/// The operation reads input tile `IN(c,s)` and weight tile `WT(k,c)`,
/// accumulates into output tile `OT(k,s)`, and — when `c > 0` — also
/// consumes the partial sum produced by the predecessor operation on
/// the same output tile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TiledOp {
    id: OpId,
    k: u32,
    c: u32,
    s: u32,
    input: TileId,
    weight: TileId,
    output: TileId,
    needs_psum: bool,
    is_final: bool,
    latency: u64,
}

impl TiledOp {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: OpId,
        k: u32,
        c: u32,
        s: u32,
        needs_psum: bool,
        is_final: bool,
        latency: u64,
    ) -> Self {
        Self {
            id,
            k,
            c,
            s,
            input: TileId::Input { c, s },
            weight: TileId::Weight { k, c },
            output: TileId::Output { k, s },
            needs_psum,
            is_final,
            latency,
        }
    }

    /// This operation's id.
    #[must_use]
    pub const fn id(&self) -> OpId {
        self.id
    }

    /// Output-channel tile index.
    #[must_use]
    pub const fn k(&self) -> u32 {
        self.k
    }

    /// Input-channel tile index.
    #[must_use]
    pub const fn c(&self) -> u32 {
        self.c
    }

    /// Linearized spatial tile index.
    #[must_use]
    pub const fn s(&self) -> u32 {
        self.s
    }

    /// The input tile read by this operation.
    #[must_use]
    pub const fn input(&self) -> TileId {
        self.input
    }

    /// The weight tile read by this operation.
    #[must_use]
    pub const fn weight(&self) -> TileId {
        self.weight
    }

    /// The output tile this operation accumulates into.
    #[must_use]
    pub const fn output(&self) -> TileId {
        self.output
    }

    /// Whether the operation consumes an existing partial sum (`c > 0`).
    #[must_use]
    pub const fn needs_psum(&self) -> bool {
        self.needs_psum
    }

    /// Whether this is the final accumulation of its output tile
    /// (`c == c_tiles - 1`); afterwards the tile is a finished output.
    #[must_use]
    pub const fn is_final(&self) -> bool {
        self.is_final
    }

    /// Compute latency of the operation in cycles (from the
    /// architecture's performance model, excluding any memory traffic).
    #[must_use]
    pub const fn latency(&self) -> u64 {
        self.latency
    }

    /// The tiles this operation *reads*: input, weight, and the partial
    /// sum when one is consumed.
    pub fn reads(&self) -> impl Iterator<Item = TileId> + '_ {
        [
            Some(self.input),
            Some(self.weight),
            self.needs_psum.then_some(self.output),
        ]
        .into_iter()
        .flatten()
    }

    /// All tiles that must be resident on-chip while the operation
    /// executes: input, weight and output.
    pub fn operands(&self) -> impl Iterator<Item = TileId> + '_ {
        [self.input, self.weight, self.output].into_iter()
    }
}

impl fmt::Display for TiledOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} <- {}, {}",
            self.id, self.output, self.input, self.weight
        )?;
        if self.needs_psum {
            write!(f, ", PS")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(c: u32, needs_psum: bool) -> TiledOp {
        TiledOp::new(OpId::new(7), 1, c, 2, needs_psum, false, 100)
    }

    #[test]
    fn tiles_match_indices() {
        let o = op(3, true);
        assert_eq!(o.input(), TileId::Input { c: 3, s: 2 });
        assert_eq!(o.weight(), TileId::Weight { k: 1, c: 3 });
        assert_eq!(o.output(), TileId::Output { k: 1, s: 2 });
    }

    #[test]
    fn reads_include_psum_only_when_needed() {
        assert_eq!(op(0, false).reads().count(), 2);
        let with_ps: Vec<_> = op(1, true).reads().collect();
        assert_eq!(with_ps.len(), 3);
        assert_eq!(with_ps[2], TileId::Output { k: 1, s: 2 });
    }

    #[test]
    fn operands_always_include_output() {
        let o = op(0, false);
        let ops: Vec<_> = o.operands().collect();
        assert!(ops.contains(&o.output()));
        assert_eq!(ops.len(), 3);
    }

    #[test]
    fn display_formats() {
        assert_eq!(OpId::new(5).to_string(), "tCONV5");
        let s = op(1, true).to_string();
        assert!(s.contains("PS"), "{s}");
        assert!(!op(0, false).to_string().contains("PS"));
    }

    #[test]
    fn op_id_round_trips() {
        assert_eq!(OpId::new(42).index(), 42);
    }
}
