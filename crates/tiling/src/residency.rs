//! Cross-layer SPM tensor residency.
//!
//! Per-layer scheduling round-trips every tensor through DRAM: a
//! layer's output tiles are stored off-chip and the consumer layer
//! loads them back as compulsory input traffic. When the network-level
//! planner decides a producer→consumer edge keeps the tensor resident
//! in a reserved SPM region instead, both sides of the edge schedule
//! against a [`Residency`] that turns those transfers into on-chip
//! gathers/scatters: same DMA-engine occupancy, zero DRAM bytes.

use serde::{Deserialize, Serialize};

/// A layer's view of the network-level residency plan: whether its
/// input tensor arrives resident in SPM (the producer kept it on-chip)
/// and whether its final output tensor stays resident for the consumer
/// (instead of being stored to DRAM).
///
/// The default is fully off — both flags false — which reproduces
/// per-layer scheduling byte-for-byte. The flags are part of the memo
/// key and the store fingerprint: a schedule computed under one
/// residency is never replayed under another.
///
/// # Examples
///
/// ```
/// use flexer_tiling::Residency;
///
/// let off = Residency::default();
/// assert!(!off.input_resident && !off.output_resident);
/// assert!(!off.any());
/// assert!(Residency { input_resident: true, output_resident: false }.any());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Residency {
    /// The layer's input tensor is already resident in SPM: input tile
    /// loads become on-chip gathers (DMA-occupying, zero DRAM bytes).
    #[serde(default)]
    pub input_resident: bool,
    /// The layer's output tensor stays resident in SPM for its
    /// consumer: final output stores become on-chip scatters into the
    /// reserved residency region (DMA-occupying, zero DRAM bytes).
    #[serde(default)]
    pub output_resident: bool,
}

impl Residency {
    /// `true` when either side of the layer is resident.
    #[must_use]
    pub fn any(self) -> bool {
        self.input_resident || self.output_resident
    }
}
