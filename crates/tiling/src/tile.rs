//! Data tile identities.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The type of data a tile holds (paper Figure 3: `tIN`, `tWT`, `tOT`).
///
/// Partial sums are output tiles that have not yet accumulated all
/// input-channel contributions; they share the [`TileKind::Output`]
/// identity (the paper's `tOT` doubles as the optional `PS` operand)
/// and are distinguished by traffic accounting, not by tile identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TileKind {
    /// Input activation tile `tIN(c, s)`.
    Input,
    /// Weight tile `tWT(k, c)`.
    Weight,
    /// Output / partial-sum tile `tOT(k, s)`.
    Output,
}

impl TileKind {
    /// All three kinds, in display order (`IN`, `WT`, `OT`).
    #[must_use]
    pub const fn all() -> [TileKind; 3] {
        [TileKind::Input, TileKind::Weight, TileKind::Output]
    }

    /// The paper's two-letter abbreviation.
    #[must_use]
    pub const fn abbrev(self) -> &'static str {
        match self {
            TileKind::Input => "IN",
            TileKind::Weight => "WT",
            TileKind::Output => "OT",
        }
    }
}

impl fmt::Display for TileKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// Identity of one data tile within a tiled layer.
///
/// Tiles are indexed by the tiling-grid coordinates that parameterize
/// them: input tiles by `(input-channel tile, spatial tile)`, weight
/// tiles by `(output-channel tile, input-channel tile)` and output
/// tiles by `(output-channel tile, spatial tile)`. The spatial index
/// `s` linearizes the `(height, width)` tile grid row-major.
///
/// # Examples
///
/// ```
/// use flexer_tiling::TileId;
///
/// let t = TileId::Weight { k: 2, c: 0 };
/// assert_eq!(t.to_string(), "WT(k2,c0)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TileId {
    /// Input activation tile at input-channel tile `c`, spatial tile `s`.
    Input {
        /// Input-channel tile index.
        c: u32,
        /// Linearized spatial tile index.
        s: u32,
    },
    /// Weight tile at output-channel tile `k`, input-channel tile `c`.
    Weight {
        /// Output-channel tile index.
        k: u32,
        /// Input-channel tile index.
        c: u32,
    },
    /// Output / partial-sum tile at output-channel tile `k`, spatial
    /// tile `s`.
    Output {
        /// Output-channel tile index.
        k: u32,
        /// Linearized spatial tile index.
        s: u32,
    },
}

impl TileId {
    /// The kind of data this tile holds.
    #[must_use]
    pub const fn kind(&self) -> TileKind {
        match self {
            TileId::Input { .. } => TileKind::Input,
            TileId::Weight { .. } => TileKind::Weight,
            TileId::Output { .. } => TileKind::Output,
        }
    }
}

impl fmt::Display for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TileId::Input { c, s } => write!(f, "IN(c{c},s{s})"),
            TileId::Weight { k, c } => write!(f, "WT(k{k},c{c})"),
            TileId::Output { k, s } => write!(f, "OT(k{k},s{s})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_mapping() {
        assert_eq!(TileId::Input { c: 0, s: 0 }.kind(), TileKind::Input);
        assert_eq!(TileId::Weight { k: 0, c: 0 }.kind(), TileKind::Weight);
        assert_eq!(TileId::Output { k: 0, s: 0 }.kind(), TileKind::Output);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TileId::Input { c: 1, s: 2 }.to_string(), "IN(c1,s2)");
        assert_eq!(TileKind::Output.to_string(), "OT");
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut tiles = [
            TileId::Output { k: 0, s: 0 },
            TileId::Input { c: 1, s: 0 },
            TileId::Weight { k: 0, c: 0 },
            TileId::Input { c: 0, s: 5 },
        ];
        tiles.sort();
        assert_eq!(tiles[0], TileId::Input { c: 0, s: 5 });
        assert_eq!(tiles[1], TileId::Input { c: 1, s: 0 });
        assert_eq!(tiles[2].kind(), TileKind::Weight);
        assert_eq!(tiles[3].kind(), TileKind::Output);
    }

    #[test]
    fn usable_as_map_key() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert(TileId::Input { c: 0, s: 0 }, 42u64);
        assert_eq!(m[&TileId::Input { c: 0, s: 0 }], 42);
    }
}
