//! Property-based tests of tiling arithmetic and DFG construction.

use flexer_arch::{ArchConfig, ArchPreset, SystolicModel};
use flexer_model::{ConvLayer, ConvLayerBuilder};
use flexer_tiling::{enumerate_tilings, Dataflow, Dfg, TilingFactors, TilingOptions};
use proptest::prelude::*;

fn layer_strategy() -> impl Strategy<Value = ConvLayer> {
    (
        1u32..128,
        4u32..64,
        1u32..128,
        prop_oneof![Just((1u32, 0u32)), Just((3, 1))],
        1u32..=2,
    )
        .prop_map(|(c, hw, k, (kern, pad), stride)| {
            ConvLayerBuilder::new("t", c, hw, hw, k)
                .kernel(kern, kern)
                .stride(stride)
                .padding(pad)
                .build()
                .unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Normalization produces no empty tiles and respects extents.
    #[test]
    fn normalization_invariants(
        layer in layer_strategy(),
        k in 1u32..40, c in 1u32..40, h in 1u32..40, w in 1u32..40,
    ) {
        let f = TilingFactors::normalized(&layer, k, c, h, w);
        prop_assert!(f.k() >= 1 && f.k() <= layer.out_channels());
        prop_assert!(f.c() >= 1 && f.c() <= layer.in_channels());
        prop_assert!(f.h() >= 1 && f.h() <= layer.out_height());
        prop_assert!(f.w() >= 1 && f.w() <= layer.out_width());
        // Extents per index are positive and sum to the dimension.
        let ks: u32 = (0..f.k()).map(|i| f.k_extent(&layer, i)).sum();
        prop_assert_eq!(ks, layer.out_channels());
        let hs: u32 = (0..f.h()).map(|i| f.h_range(&layer, i).1).sum();
        prop_assert_eq!(hs, layer.out_height());
        // Normalization is idempotent.
        let again = TilingFactors::normalized(&layer, f.k(), f.c(), f.h(), f.w());
        prop_assert_eq!(f, again);
    }

    /// Enumerated tilings all satisfy the viability contract.
    #[test]
    fn enumerated_tilings_are_viable(layer in layer_strategy()) {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let opts = TilingOptions { max_tilings: 12, ..Default::default() };
        for f in enumerate_tilings(&layer, &arch, &opts) {
            prop_assert!(f.num_ops() <= opts.max_ops);
            // The first (largest) working set fits the buffer — checked
            // by building the DFG and summing op 0's operands.
            let model = SystolicModel::new(&arch);
            let dfg = Dfg::build(&layer, f, Dataflow::Kcs, &model, &arch).unwrap();
            let ws: u64 = dfg.ops()[0].operands().map(|t| dfg.tile_bytes(t)).sum();
            prop_assert!(ws <= arch.spm_bytes(), "{f}: ws {ws}");
        }
    }

    /// The DFG's dependency structure is a forest of disjoint chains:
    /// every op has at most one predecessor/successor, chains are
    /// acyclic and cover all ops of each (k, s) group.
    #[test]
    fn dependency_chains_are_well_formed(
        layer in layer_strategy(),
        df in prop::sample::select(Dataflow::all().to_vec()),
        c in 1u32..6,
    ) {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let model = SystolicModel::new(&arch);
        let f = TilingFactors::normalized(&layer, 2, c, 2, 2);
        let dfg = Dfg::build(&layer, f, df, &model, &arch).unwrap();
        let mut chain_lengths = std::collections::BTreeMap::new();
        for start in dfg.initial_ready() {
            let mut len = 1u32;
            let mut cur = start;
            while let Some(next) = dfg.succ(cur) {
                prop_assert_eq!(dfg.pred(next), Some(cur));
                cur = next;
                len += 1;
                prop_assert!(len <= f.c(), "chain longer than c tiles");
            }
            prop_assert!(dfg.op(cur).is_final());
            chain_lengths.insert((dfg.op(start).k(), dfg.op(start).s()), len);
        }
        // One chain per (k, s), each of length c.
        prop_assert_eq!(
            chain_lengths.len() as u64,
            u64::from(f.k()) * u64::from(f.spatial())
        );
        prop_assert!(chain_lengths.values().all(|&l| l == f.c()));
    }

    /// Per-op latencies are positive and the total workload matches the
    /// layer MACs within array-rounding slack.
    #[test]
    fn latencies_cover_the_workload(layer in layer_strategy()) {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let model = SystolicModel::new(&arch);
        let f = TilingFactors::normalized(&layer, 2, 2, 2, 2);
        let dfg = Dfg::build(&layer, f, Dataflow::Kcs, &model, &arch).unwrap();
        let total: u64 = dfg.ops().iter().map(|o| o.latency()).sum();
        let peak = u64::from(arch.pe_rows()) * u64::from(arch.pe_cols());
        prop_assert!(total >= layer.macs().div_ceil(peak));
    }
}
