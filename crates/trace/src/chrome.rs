//! Chrome trace-event (Perfetto / `chrome://tracing`) exporter.
//!
//! Emits the JSON object format: a `traceEvents` array of `"M"`
//! thread-name metadata, `"X"` complete events (one per span, with
//! `dur` computed from the matching exit) and `"C"` counter events.
//! Output is a pure function of the trace — key order, number
//! formatting and escaping are all fixed — so byte-identical traces
//! export to byte-identical JSON.

use crate::event::{AttrValue, EventKind};
use crate::lane::ClockMode;
use crate::trace::{LaneData, Trace};

/// Process id used for every event (the pipeline is one process).
const PID: u32 = 1;

/// Serialises a trace to Chrome trace-event JSON.
///
/// Timestamps: Chrome's `ts`/`dur` are microseconds. Under the wall
/// clock, recorded nanoseconds are emitted as fractional microseconds
/// (`ns / 1000` with three decimals). Under the logical clock (and for
/// explicit-timestamp lanes such as schedule Gantt lanes, whose ticks
/// are cycles) ticks are emitted 1:1 as integer microseconds, which
/// keeps the export byte-stable and still renders proportionally.
#[must_use]
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for lane in trace.lanes() {
        emit_lane(&mut out, &mut first, lane, trace.clock());
    }
    out.push_str("]}");
    out
}

fn emit_lane(out: &mut String, first: &mut bool, lane: &LaneData, clock: ClockMode) {
    sep(out, first);
    out.push_str(&format!(
        "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{PID},\"tid\":{},\
         \"args\":{{\"name\":{}}}}}",
        lane.id,
        json_string(&lane.name)
    ));
    // Matches each Enter with its Exit by replaying the LIFO span
    // discipline; stack slots hold the enter event index.
    let mut stack: Vec<usize> = Vec::new();
    for (index, event) in lane.events.iter().enumerate() {
        match event.kind {
            EventKind::Enter { .. } => stack.push(index),
            EventKind::Exit => {
                let enter_idx = stack
                    .pop()
                    .expect("export requires a checked trace: exit without enter");
                let enter = &lane.events[enter_idx];
                let EventKind::Enter { name } = enter.kind else {
                    unreachable!("stack holds only Enter indices");
                };
                sep(out, first);
                out.push_str(&format!(
                    "{{\"ph\":\"X\",\"name\":{},\"pid\":{PID},\"tid\":{},\
                     \"ts\":{},\"dur\":{}",
                    json_string(name),
                    lane.id,
                    ts_value(enter.ts, clock),
                    ts_value(event.ts - enter.ts, clock)
                ));
                if !enter.attrs.is_empty() {
                    out.push_str(",\"args\":{");
                    for (i, attr) in enter.attrs.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&json_string(attr.key));
                        out.push(':');
                        out.push_str(&json_attr_value(&attr.value));
                    }
                    out.push('}');
                }
                out.push('}');
            }
            EventKind::Counter { name, value } => {
                sep(out, first);
                out.push_str(&format!(
                    "{{\"ph\":\"C\",\"name\":{},\"pid\":{PID},\"tid\":{},\
                     \"ts\":{},\"args\":{{{}:{value}}}}}",
                    json_string(name),
                    lane.id,
                    ts_value(event.ts, clock),
                    json_string(name)
                ));
            }
        }
    }
    assert!(
        stack.is_empty(),
        "export requires a checked trace: {} span(s) left open on lane {}",
        stack.len(),
        lane.id
    );
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

fn ts_value(ts: u64, clock: ClockMode) -> String {
    match clock {
        ClockMode::Logical => ts.to_string(),
        ClockMode::Wall => {
            // Nanoseconds → microseconds with fixed three decimals.
            format!("{}.{:03}", ts / 1000, ts % 1000)
        }
    }
}

fn json_attr_value(value: &AttrValue) -> String {
    match value {
        AttrValue::U64(v) => v.to_string(),
        AttrValue::I64(v) => v.to_string(),
        AttrValue::F64(v) => {
            if v.is_finite() {
                format!("{v:?}")
            } else {
                // JSON has no NaN/Infinity; stringify them.
                json_string(&format!("{v:?}"))
            }
        }
        AttrValue::Str(v) => json_string(v),
        AttrValue::Bool(v) => v.to_string(),
    }
}

/// Escapes a string per RFC 8259 (quotes, backslash, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lane::{TraceConfig, Tracer};

    #[test]
    fn exports_metadata_complete_and_counter_events() {
        let t = Tracer::new(TraceConfig::default());
        let mut lane = t.lane(0, "search");
        let g = lane.enter("candidate");
        lane.attr("dataflow", "csk");
        lane.attr("ops", 12u64);
        lane.counter("spm_used", 512);
        lane.exit(g);
        let trace = Trace::from_lanes(t.config(), vec![lane]);
        trace.check().unwrap();
        let json = to_chrome_json(&trace);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"args\":{\"name\":\"search\"}"));
        assert!(json.contains(
            "\"ph\":\"X\",\"name\":\"candidate\",\"pid\":1,\"tid\":0,\"ts\":0,\"dur\":2"
        ));
        assert!(json.contains("\"args\":{\"dataflow\":\"csk\",\"ops\":12}"));
        assert!(json.contains("\"ph\":\"C\",\"name\":\"spm_used\""));
        assert!(json.contains("\"args\":{\"spm_used\":512}"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn export_is_deterministic() {
        let build = || {
            let t = Tracer::new(TraceConfig::default());
            let mut lane = t.lane(2, "worker");
            let outer = lane.enter("outer");
            let inner = lane.enter("inner");
            lane.exit(inner);
            lane.exit(outer);
            to_chrome_json(&Trace::from_lanes(t.config(), vec![lane]))
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn wall_timestamps_render_as_fractional_micros() {
        assert_eq!(ts_value(1_234_567, ClockMode::Wall), "1234.567");
        assert_eq!(ts_value(5, ClockMode::Wall), "0.005");
        assert_eq!(ts_value(5, ClockMode::Logical), "5");
    }
}
