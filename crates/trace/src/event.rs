//! The raw trace event model: spans, counters and attributes.

use std::fmt;

/// One structured attribute value.
///
/// The variants cover everything the pipeline records; all of them
/// format deterministically (no pointer-, hash- or locale-dependent
/// output), which is what lets whole traces be golden-tested.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned counter-like values (bytes, counts, cycles).
    U64(u64),
    /// Signed values.
    I64(i64),
    /// Scores and ratios. Formatted with `{:?}`, which round-trips and
    /// is stable for equal bit patterns.
    F64(f64),
    /// Names and free-form reasons.
    Str(String),
    /// Flags.
    Bool(bool),
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::I64(v) => write!(f, "{v}"),
            AttrValue::F64(v) => write!(f, "{v:?}"),
            AttrValue::Str(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(u64::from(v))
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_owned())
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

/// A `key=value` attribute attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub struct Attr {
    /// Attribute key (static: attribute vocabularies are fixed at the
    /// instrumentation site).
    pub key: &'static str,
    /// Attribute value.
    pub value: AttrValue,
}

/// What one trace event records.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span opens. Attributes attach to the most recently opened
    /// span that is still unclosed on the same lane.
    Enter {
        /// Span name (static: span vocabularies are fixed at the
        /// instrumentation site).
        name: &'static str,
    },
    /// The innermost open span of the lane closes.
    Exit,
    /// A point-in-time counter sample (a gauge in Chrome terms).
    Counter {
        /// Counter name.
        name: &'static str,
        /// Sampled value.
        value: u64,
    },
}

/// One timestamped trace event on a lane.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Lane-local timestamp: logical ticks ([`crate::ClockMode::Logical`])
    /// or nanoseconds since the tracer epoch
    /// ([`crate::ClockMode::Wall`]). Non-decreasing per lane; strictly
    /// increasing under the logical clock.
    pub ts: u64,
    /// What happened.
    pub kind: EventKind,
    /// Structured attributes (spans only; counters carry their value).
    pub attrs: Vec<Attr>,
}

/// Why a drained trace failed its well-formedness check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// An `Exit` event had no matching open span.
    ExitWithoutEnter {
        /// Lane on which the orphan exit appeared.
        lane: u32,
        /// Index of the offending event within the lane.
        index: usize,
    },
    /// A lane drained with spans still open.
    UnbalancedEnter {
        /// Lane with open spans.
        lane: u32,
        /// Number of spans left open.
        open: usize,
    },
    /// Timestamps went backwards within one lane.
    NonMonotoneTimestamp {
        /// Lane with the regression.
        lane: u32,
        /// Index of the event whose timestamp regressed.
        index: usize,
    },
    /// Under the logical clock, two events of a lane shared a
    /// timestamp (ticks must be strictly increasing).
    DuplicateTick {
        /// Lane with the duplicate.
        lane: u32,
        /// Index of the second event carrying the tick.
        index: usize,
    },
    /// Two lanes share an id, so span identities would be ambiguous.
    DuplicateLane {
        /// The id claimed twice.
        lane: u32,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::ExitWithoutEnter { lane, index } => {
                write!(
                    f,
                    "lane {lane}: exit without matching enter at event {index}"
                )
            }
            TraceError::UnbalancedEnter { lane, open } => {
                write!(f, "lane {lane}: drained with {open} span(s) still open")
            }
            TraceError::NonMonotoneTimestamp { lane, index } => {
                write!(f, "lane {lane}: timestamp regressed at event {index}")
            }
            TraceError::DuplicateTick { lane, index } => {
                write!(f, "lane {lane}: duplicate logical tick at event {index}")
            }
            TraceError::DuplicateLane { lane } => {
                write!(f, "lane id {lane} used by two lanes")
            }
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_values_format_deterministically() {
        assert_eq!(AttrValue::U64(7).to_string(), "7");
        assert_eq!(AttrValue::I64(-3).to_string(), "-3");
        assert_eq!(AttrValue::F64(1.5).to_string(), "1.5");
        assert_eq!(AttrValue::Str("csk".into()).to_string(), "csk");
        assert_eq!(AttrValue::Bool(true).to_string(), "true");
    }

    #[test]
    fn conversions_cover_common_types() {
        assert_eq!(AttrValue::from(3u64), AttrValue::U64(3));
        assert_eq!(AttrValue::from(3usize), AttrValue::U64(3));
        assert_eq!(AttrValue::from(3u32), AttrValue::U64(3));
        assert_eq!(AttrValue::from(-3i64), AttrValue::I64(-3));
        assert_eq!(AttrValue::from(0.5f64), AttrValue::F64(0.5));
        assert_eq!(AttrValue::from("x"), AttrValue::Str("x".into()));
        assert_eq!(AttrValue::from(false), AttrValue::Bool(false));
    }

    #[test]
    fn errors_display_their_lane() {
        let e = TraceError::ExitWithoutEnter { lane: 4, index: 2 };
        assert!(e.to_string().contains("lane 4"));
        let e = TraceError::UnbalancedEnter { lane: 1, open: 3 };
        assert!(e.to_string().contains("3 span(s)"));
    }
}
