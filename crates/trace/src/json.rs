//! A minimal JSON parser, used by the schema tests to read the Chrome
//! export back. The workspace's vendored `serde` is a no-op stand-in,
//! so validation needs its own reader; keeping it in the crate means
//! the exporter and its checker version together.

use std::fmt;

/// A parsed JSON value. Object members keep source order (Chrome trace
/// readers don't care, but determinism tests do).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`; trace fields fit exactly).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, members in source order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects; `None` elsewhere or when absent.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements when this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value when this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value when this is a number.
    #[must_use]
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value when this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The members when this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// Parse failure: a message and the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What was wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// [`JsonError`] with the offset of the first malformed byte.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {text}")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates never appear in the exporter's
                            // output; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("surrogate \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input is &str, chunks are char-aligned"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,{"b":"c"}],"d":{}}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_num(), Some(1.0));
        assert_eq!(a[1].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(v.get("d").unwrap().as_object(), Some(&[][..]));
    }

    #[test]
    fn unescapes_strings() {
        assert_eq!(
            parse(r#""a\"b\\c\nA""#).unwrap(),
            Json::Str("a\"b\\c\nA".into())
        );
    }

    #[test]
    fn preserves_member_order() {
        let v = parse(r#"{"z":1,"a":2}"#).unwrap();
        let members = v.as_object().unwrap();
        assert_eq!(members[0].0, "z");
        assert_eq!(members[1].0, "a");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("true false").is_err());
        let err = parse("nul").unwrap_err();
        assert!(err.to_string().contains("byte 0"));
    }

    #[test]
    fn round_trips_exporter_output() {
        use crate::chrome::to_chrome_json;
        use crate::lane::{TraceConfig, Tracer};
        use crate::trace::Trace;
        let t = Tracer::new(TraceConfig::default());
        let mut lane = t.lane(0, "lane \"quoted\"");
        let g = lane.enter("span");
        lane.attr("why", "bound<incumbent");
        lane.exit(g);
        let json = to_chrome_json(&Trace::from_lanes(t.config(), vec![lane]));
        let parsed = parse(&json).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].get("args").unwrap().get("name").unwrap().as_str(),
            Some("lane \"quoted\"")
        );
    }
}
