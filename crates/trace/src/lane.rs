//! The recording side: tracer configuration and per-unit-of-work lane
//! buffers.

use crate::event::{Attr, AttrValue, Event, EventKind};
use std::time::Instant;

/// How timestamps are generated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ClockMode {
    /// Deterministic lane-local tick counter (default): event *i* of a
    /// lane gets timestamp *i*. Two runs of the same deterministic
    /// computation produce byte-identical traces — the mode every
    /// golden test uses. Durations are event counts, not time.
    #[default]
    Logical,
    /// Nanoseconds since the tracer epoch, clamped to be non-decreasing
    /// per lane. Span durations are real wall-clock profiles; traces
    /// are *not* byte-stable across runs.
    Wall,
}

/// How much of the pipeline is recorded. Levels are cumulative.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceDetail {
    /// Search-level spans only: the search root, per-layer bound
    /// pre-passes, one span per `(tiling, dataflow)` candidate with
    /// its outcome, per-layer reductions and verification (default).
    #[default]
    Search,
    /// Plus one span per scheduler step (Algorithm 1's issue loop)
    /// with set-selection attributes.
    Steps,
    /// Plus per-step memory events: commit spans with eviction /
    /// compaction attributes and SPM occupancy / rollback counters.
    Memory,
}

/// Tracer configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Timestamp source.
    pub clock: ClockMode,
    /// Instrumentation depth.
    pub detail: TraceDetail,
}

/// The cheap, shareable handle instrumentation sites consult.
///
/// A `Tracer` does not collect anything itself: recording happens in
/// per-unit-of-work [`Lane`] buffers it hands out, which the owner of
/// the computation merges into a [`crate::Trace`] in a deterministic
/// order at drain time. That keeps the hot path lock-free — a lane is
/// plain thread-local data — and makes span identity a function of the
/// merge order (for the search: the work-queue order), never of thread
/// interleaving.
#[derive(Debug, Clone, Copy)]
pub struct Tracer {
    enabled: bool,
    config: TraceConfig,
    epoch: Instant,
}

impl Tracer {
    /// An enabled tracer recording under `config`.
    #[must_use]
    pub fn new(config: TraceConfig) -> Self {
        Self {
            enabled: true,
            config,
            epoch: Instant::now(),
        }
    }

    /// A disabled tracer: every lane it hands out drops all events.
    /// The per-event cost of instrumentation under a disabled tracer
    /// is one branch on a `bool`.
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            config: TraceConfig::default(),
            epoch: Instant::now(),
        }
    }

    /// Whether lanes record.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The recording configuration.
    #[must_use]
    pub fn config(&self) -> TraceConfig {
        self.config
    }

    /// Creates the recording buffer for one unit of work. `id` decides
    /// where the lane sorts in the drained trace — derive it from a
    /// deterministic work order, not from thread identity.
    #[must_use]
    pub fn lane(&self, id: u32, name: impl Into<String>) -> Lane {
        Lane {
            enabled: self.enabled,
            config: self.config,
            epoch: self.epoch,
            id,
            name: name.into(),
            events: Vec::new(),
            open: Vec::new(),
            last_ts: 0,
        }
    }
}

/// A lock-free per-unit-of-work event buffer.
///
/// All recording methods are no-ops on a disabled lane, so
/// instrumentation can be threaded unconditionally through hot code.
/// Spans follow strict LIFO discipline per lane; attributes attach to
/// the innermost open span.
#[derive(Debug)]
pub struct Lane {
    enabled: bool,
    config: TraceConfig,
    epoch: Instant,
    pub(crate) id: u32,
    pub(crate) name: String,
    pub(crate) events: Vec<Event>,
    /// Indices (into `events`) of the currently open `Enter` events.
    open: Vec<usize>,
    last_ts: u64,
}

/// Token returned by [`Lane::enter`], consumed by [`Lane::exit`].
/// Prevents accidentally closing a span twice.
#[derive(Debug)]
#[must_use = "spans must be closed with Lane::exit"]
pub struct SpanGuard {
    depth: usize,
}

impl Lane {
    /// A permanently disabled lane, for call sites that must pass one
    /// but have no tracer (the untraced public APIs).
    #[must_use]
    pub fn off() -> Lane {
        Tracer::disabled().lane(0, "")
    }

    /// Whether this lane records anything at all.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Whether this lane records at `detail` or deeper.
    #[inline]
    #[must_use]
    pub fn records(&self, detail: TraceDetail) -> bool {
        self.enabled && self.config.detail >= detail
    }

    /// Whether the lane's output is deterministic across runs (the
    /// logical clock). Instrumentation uses this to skip attaching
    /// wall-time-derived values that would break byte-stable traces.
    #[inline]
    #[must_use]
    pub fn deterministic(&self) -> bool {
        self.config.clock == ClockMode::Logical
    }

    fn now(&mut self) -> u64 {
        let ts = match self.config.clock {
            ClockMode::Logical => self.last_ts + u64::from(!self.events.is_empty()),
            ClockMode::Wall => {
                let ns = self.epoch.elapsed().as_nanos() as u64;
                ns.max(self.last_ts)
            }
        };
        self.last_ts = ts;
        ts
    }

    /// Opens a span. Returns the guard [`Lane::exit`] consumes; on a
    /// disabled lane the guard is inert.
    #[inline]
    pub fn enter(&mut self, name: &'static str) -> SpanGuard {
        if !self.enabled {
            return SpanGuard { depth: 0 };
        }
        let ts = self.now();
        self.enter_at(ts, name)
    }

    /// Opens a span at an explicit timestamp (for pre-timed data such
    /// as schedule Gantt lanes, where timestamps are cycle numbers).
    /// Timestamps that would regress are clamped to the lane's last
    /// timestamp, keeping the lane monotone.
    pub fn enter_at(&mut self, ts: u64, name: &'static str) -> SpanGuard {
        if !self.enabled {
            return SpanGuard { depth: 0 };
        }
        self.last_ts = self.last_ts.max(ts);
        self.open.push(self.events.len());
        self.events.push(Event {
            ts: self.last_ts,
            kind: EventKind::Enter { name },
            attrs: Vec::new(),
        });
        SpanGuard {
            depth: self.open.len(),
        }
    }

    /// Closes the innermost open span.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when spans are closed out of LIFO
    /// order.
    #[inline]
    pub fn exit(&mut self, guard: SpanGuard) {
        if !self.enabled {
            return;
        }
        let ts = self.now();
        self.exit_at(ts, guard);
    }

    /// Closes the innermost open span at an explicit timestamp.
    pub fn exit_at(&mut self, ts: u64, guard: SpanGuard) {
        if !self.enabled {
            return;
        }
        debug_assert_eq!(
            guard.depth,
            self.open.len(),
            "spans must close in LIFO order"
        );
        self.open.pop();
        self.last_ts = self.last_ts.max(ts);
        self.events.push(Event {
            ts: self.last_ts,
            kind: EventKind::Exit,
            attrs: Vec::new(),
        });
    }

    /// Attaches `key=value` to the innermost open span. Dropped when
    /// no span is open.
    #[inline]
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if !self.enabled {
            return;
        }
        if let Some(&idx) = self.open.last() {
            self.events[idx].attrs.push(Attr {
                key,
                value: value.into(),
            });
        }
    }

    /// Records a counter sample (a gauge).
    #[inline]
    pub fn counter(&mut self, name: &'static str, value: u64) {
        if !self.enabled {
            return;
        }
        let ts = self.now();
        self.counter_at(ts, name, value);
    }

    /// Records a counter sample at an explicit timestamp.
    pub fn counter_at(&mut self, ts: u64, name: &'static str, value: u64) {
        if !self.enabled {
            return;
        }
        self.last_ts = self.last_ts.max(ts);
        self.events.push(Event {
            ts: self.last_ts,
            kind: EventKind::Counter { name, value },
            attrs: Vec::new(),
        });
    }

    /// Number of open spans (test and assertion helper).
    #[must_use]
    pub fn open_spans(&self) -> usize {
        self.open.len()
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the lane recorded nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_lane_records_nothing() {
        let mut lane = Lane::off();
        let g = lane.enter("x");
        lane.attr("k", 1u64);
        lane.counter("c", 2);
        lane.exit(g);
        assert!(lane.is_empty());
        assert!(!lane.is_enabled());
        assert!(!lane.records(TraceDetail::Search));
    }

    #[test]
    fn logical_clock_ticks_strictly() {
        let tracer = Tracer::new(TraceConfig::default());
        let mut lane = tracer.lane(0, "l");
        let outer = lane.enter("outer");
        let inner = lane.enter("inner");
        lane.counter("c", 9);
        lane.exit(inner);
        lane.exit(outer);
        let ts: Vec<u64> = lane.events.iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![0, 1, 2, 3, 4]);
        assert_eq!(lane.open_spans(), 0);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let tracer = Tracer::new(TraceConfig {
            clock: ClockMode::Wall,
            ..TraceConfig::default()
        });
        let mut lane = tracer.lane(0, "l");
        let g = lane.enter("a");
        lane.exit(g);
        let g = lane.enter("b");
        lane.exit(g);
        let ts: Vec<u64> = lane.events.iter().map(|e| e.ts).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }

    #[test]
    fn attrs_attach_to_innermost_open_span() {
        let tracer = Tracer::new(TraceConfig::default());
        let mut lane = tracer.lane(0, "l");
        let outer = lane.enter("outer");
        lane.attr("on", "outer");
        let inner = lane.enter("inner");
        lane.attr("on", "inner");
        lane.exit(inner);
        lane.attr("tail", true);
        lane.exit(outer);
        assert_eq!(lane.events[0].attrs.len(), 2); // "on" + "tail"
        assert_eq!(lane.events[1].attrs.len(), 1);
    }

    #[test]
    fn detail_levels_are_cumulative() {
        let tracer = Tracer::new(TraceConfig {
            detail: TraceDetail::Steps,
            ..TraceConfig::default()
        });
        let lane = tracer.lane(0, "l");
        assert!(lane.records(TraceDetail::Search));
        assert!(lane.records(TraceDetail::Steps));
        assert!(!lane.records(TraceDetail::Memory));
    }

    #[test]
    fn explicit_timestamps_clamp_monotone() {
        let tracer = Tracer::new(TraceConfig::default());
        let mut lane = tracer.lane(0, "gantt");
        let g = lane.enter_at(100, "op");
        lane.exit_at(40, g); // earlier than the enter: clamped to 100
        assert_eq!(lane.events[1].ts, 100);
    }
}
