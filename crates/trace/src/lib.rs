//! Deterministic tracing and profiling for the Flexer search pipeline.
//!
//! The model is small and strict:
//!
//! - A [`Tracer`] is a `Copy` handle holding configuration. It records
//!   nothing itself; it hands out [`Lane`] buffers, one per unit of
//!   work. Recording into a lane is plain, lock-free, single-owner
//!   data access — lanes are what make tracing safe inside the search
//!   thread pool.
//! - A [`Lane`] holds timestamped events: `Enter`/`Exit` span pairs in
//!   strict LIFO order, structured key/value [`Attr`]s on the innermost
//!   open span, and point-in-time [`EventKind::Counter`] samples.
//! - The computation's owner drains lanes into a [`Trace`] with
//!   [`Trace::from_lanes`], which orders lanes by id. Lane ids are
//!   assigned from a deterministic work order (for the search: the
//!   work-queue index), so the merged trace — and the span ids
//!   [`Trace::span_ids`] derives from it — never depend on thread
//!   interleaving.
//!
//! Determinism contract: under [`ClockMode::Logical`] (the default),
//! timestamps are lane-local tick counters and every exporter is a
//! pure function of the trace, so two runs that perform the same work
//! in the same work order produce **byte-identical** output. The
//! golden tests in the workspace root pin exactly that.
//!
//! Exporters: [`chrome::to_chrome_json`] writes Chrome trace-event
//! JSON loadable in Perfetto / `chrome://tracing`;
//! [`text::render_tree`] writes an indented span-tree summary.
//! [`stats`] computes deterministic latency percentiles (p50/p99 in
//! logical ticks) from either a [`Trace`] or a rendered span tree —
//! the basis of wall-clock-free latency SLO gates.
//!
//! The crate is intentionally dependency-free, and the disabled path
//! ([`Tracer::disabled`] / [`Lane::off`]) costs one branch per call
//! site — cheap enough to thread unconditionally through the
//! scheduler's hot loops (the bench crate's `trace_overhead` bench
//! holds this to <1% on the full search benchmark).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
mod event;
pub mod json;
mod lane;
pub mod stats;
pub mod text;
mod trace;

pub use event::{Attr, AttrValue, Event, EventKind, TraceError};
pub use lane::{ClockMode, Lane, SpanGuard, TraceConfig, TraceDetail, Tracer};
pub use stats::LatencySummary;
pub use trace::{LaneData, Trace, TraceSummary};
