//! Latency statistics over deterministic traces.
//!
//! Under the default [`ClockMode::Logical`](crate::ClockMode::Logical)
//! a span's duration is the number of events recorded inside it — a
//! pure function of the work performed, byte-identical across runs.
//! That makes tick durations the only latency measure a CI gate can
//! assert percentiles on without wall-clock flake: "the p99 `layer`
//! span stays under N ticks" is a statement about search effort, not
//! about machine load.
//!
//! Two entry points cover both sides of a service boundary:
//!
//! - [`span_durations`] walks an in-memory [`Trace`] (the producer
//!   side — a search that just ran).
//! - [`parse_rendered_tree`] re-reads the plain-text span tree emitted
//!   by [`crate::text::render_tree`] (the consumer side — e.g. a
//!   client that received a `span_tree` string over the wire and wants
//!   to hold the server to a latency SLO).
//!
//! [`percentile`] is shared nearest-rank math, and [`LatencySummary`]
//! packages the p50/p99 pair every gate wants.

use crate::event::EventKind;
use crate::trace::Trace;
use std::fmt;

/// One span recovered from a rendered tree: enough to aggregate
/// latency by name without the original [`Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedSpan {
    /// The stable span id (`#n` in the rendering).
    pub id: u64,
    /// The span name.
    pub name: String,
    /// Opening timestamp.
    pub start: u64,
    /// Duration in the trace's clock units (ticks under the logical
    /// clock).
    pub dur: u64,
    /// Nesting depth within its lane (root spans are depth 1).
    pub depth: usize,
}

/// Durations of every span named `name`, walking lanes in id order and
/// events in recording order — the same deterministic order as
/// [`Trace::span_ids`], so the result is byte-stable under the logical
/// clock.
///
/// The trace is expected to be well-formed (see [`Trace::check`]);
/// unbalanced lanes yield only the spans whose exits were recorded.
#[must_use]
pub fn span_durations(trace: &Trace, name: &str) -> Vec<u64> {
    let mut out = Vec::new();
    for lane in trace.lanes() {
        // (enter index, enter ts, matches) stack; durations resolve at
        // exit but must be emitted in *enter* order to stay stable, so
        // collect (enter index, duration) then sort.
        let mut stack: Vec<(usize, u64, bool)> = Vec::new();
        let mut found: Vec<(usize, u64)> = Vec::new();
        for (index, event) in lane.events.iter().enumerate() {
            match event.kind {
                EventKind::Enter { name: n } => stack.push((index, event.ts, n == name)),
                EventKind::Exit => {
                    if let Some((enter, ts, matches)) = stack.pop() {
                        if matches {
                            found.push((enter, event.ts - ts));
                        }
                    }
                }
                EventKind::Counter { .. } => {}
            }
        }
        found.sort_by_key(|&(enter, _)| enter);
        out.extend(found.into_iter().map(|(_, dur)| dur));
    }
    out
}

/// Parses the output of [`crate::text::render_tree`] back into spans.
///
/// The rendering is golden-pinned (`#id name [start +dur] attrs…`
/// lines, two-space indentation under a `lane N "name"` header), so
/// this parser is the supported way for a *consumer* of a span tree —
/// e.g. a client holding a `span_tree` response member — to compute
/// latency statistics without the original trace. Lines that are not
/// span lines (lane headers, counters, attributes) are skipped;
/// malformed span lines are skipped rather than guessed at.
#[must_use]
pub fn parse_rendered_tree(text: &str) -> Vec<ParsedSpan> {
    let mut out = Vec::new();
    for line in text.lines() {
        let trimmed = line.trim_start();
        let indent = line.len() - trimmed.len();
        let Some(rest) = trimmed.strip_prefix('#') else {
            continue;
        };
        // "#id name [start +dur] attrs…"
        let mut parts = rest.splitn(3, ' ');
        let Some(id) = parts.next().and_then(|s| s.parse::<u64>().ok()) else {
            continue;
        };
        let Some(name) = parts.next() else { continue };
        let Some(tail) = parts.next() else { continue };
        let Some(open) = tail.strip_prefix('[') else {
            continue;
        };
        let Some(close) = open.find(']') else {
            continue;
        };
        let mut times = open[..close].splitn(2, " +");
        let (Some(start), Some(dur)) = (
            times.next().and_then(|s| s.parse::<u64>().ok()),
            times.next().and_then(|s| s.parse::<u64>().ok()),
        ) else {
            continue;
        };
        out.push(ParsedSpan {
            id,
            name: name.to_string(),
            start,
            dur,
            // render_tree indents depth-1 spans by two spaces.
            depth: indent / 2,
        });
    }
    out
}

/// Nearest-rank percentile of `values` (`p` in `0.0..=100.0`).
/// Sorts a copy; returns 0 for an empty slice.
#[must_use]
pub fn percentile(values: &[u64], p: f64) -> u64 {
    if values.is_empty() {
        return 0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let p = p.clamp(0.0, 100.0);
    // Nearest-rank: the smallest value with at least ⌈p/100·n⌉
    // observations at or below it.
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// The p50/p99 pair (plus extremes) of one span population — what a
/// latency-SLO gate asserts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Number of observations.
    pub count: usize,
    /// Median duration.
    pub p50: u64,
    /// 99th-percentile duration.
    pub p99: u64,
    /// Largest duration.
    pub max: u64,
}

impl LatencySummary {
    /// Summarizes a set of durations.
    #[must_use]
    pub fn of(durations: &[u64]) -> Self {
        Self {
            count: durations.len(),
            p50: percentile(durations, 50.0),
            p99: percentile(durations, 99.0),
            max: durations.iter().copied().max().unwrap_or(0),
        }
    }

    /// Summarizes every span named `name` in `trace`.
    #[must_use]
    pub fn of_trace(trace: &Trace, name: &str) -> Self {
        Self::of(&span_durations(trace, name))
    }

    /// Summarizes every span named `name` in a rendered span tree.
    #[must_use]
    pub fn of_rendered(text: &str, name: &str) -> Self {
        let durations: Vec<u64> = parse_rendered_tree(text)
            .into_iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur)
            .collect();
        Self::of(&durations)
    }
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} p50={} p99={} max={}",
            self.count, self.p50, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lane::{TraceConfig, Tracer};
    use crate::text::render_tree;

    fn sample_trace() -> Trace {
        let t = Tracer::new(TraceConfig::default());
        let mut lane = t.lane(0, "search");
        let outer = lane.enter("layer");
        lane.attr("name", "c1");
        let inner = lane.enter("candidate");
        lane.counter("sets", 3);
        lane.exit(inner);
        lane.exit(outer);
        let outer = lane.enter("layer");
        lane.exit(outer);
        Trace::from_lanes(t.config(), vec![lane])
    }

    #[test]
    fn durations_are_logical_tick_counts() {
        let trace = sample_trace();
        // First layer span: enter@0 exit@4 → 4 ticks; second: 1 tick.
        assert_eq!(span_durations(&trace, "layer"), vec![4, 1]);
        assert_eq!(span_durations(&trace, "candidate"), vec![2]);
        assert!(span_durations(&trace, "absent").is_empty());
    }

    #[test]
    fn rendered_tree_round_trips_durations() {
        let trace = sample_trace();
        let text = render_tree(&trace);
        let spans = parse_rendered_tree(&text);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "layer");
        assert_eq!((spans[0].start, spans[0].dur, spans[0].depth), (0, 4, 1));
        assert_eq!(spans[1].name, "candidate");
        assert_eq!((spans[1].dur, spans[1].depth), (2, 2));
        // The two views agree on every population.
        for name in ["layer", "candidate"] {
            assert_eq!(
                LatencySummary::of_trace(&trace, name),
                LatencySummary::of_rendered(&text, name),
                "{name}"
            );
        }
    }

    #[test]
    fn parser_skips_non_span_lines() {
        let spans = parse_rendered_tree(
            "lane 0 \"search\"\n  #0 layer [0 +4] name=c1\n    sets=3 @2\nnot a span\n  #x bad\n",
        );
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].id, 0);
    }

    #[test]
    fn nearest_rank_percentiles() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&[7], 99.0), 7);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn summary_displays_both_percentiles() {
        let s = LatencySummary::of(&[1, 2, 3, 4]);
        assert_eq!(s.count, 4);
        assert_eq!(s.p50, 2);
        assert_eq!(s.p99, 4);
        assert_eq!(s.max, 4);
        let line = s.to_string();
        assert!(line.contains("p50=2") && line.contains("p99=4"), "{line}");
    }
}
