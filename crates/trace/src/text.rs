//! Plain-text span-tree exporter: the human-readable (and
//! golden-testable) view of a trace.

use crate::event::EventKind;
use crate::trace::Trace;
use std::fmt::Write as _;

/// Renders a trace as an indented span tree, one section per lane:
///
/// ```text
/// lane 0 "search"
///   #0 search/network [0 +11] layers=2
///     #1 layer [1 +4] name=conv1 outcome=scheduled
/// ```
///
/// Each span line carries its stable id (see [`Trace::span_ids`]), its
/// open timestamp, `+duration`, and its attributes in recording order.
/// Counters render as `name=value @ts` lines at their nesting depth.
/// The output is a pure function of the trace, so under the logical
/// clock it is byte-stable across runs.
#[must_use]
pub fn render_tree(trace: &Trace) -> String {
    let mut out = String::new();
    let mut next_span_id = 0u64;
    for lane in trace.lanes() {
        let _ = writeln!(out, "lane {} {:?}", lane.id, lane.name);
        // Durations are only known at exit, but parents must print
        // before children: pass 1 resolves each enter's exit ts, pass 2
        // walks top-down.
        let mut stack: Vec<usize> = Vec::new();
        let mut exit_ts = vec![0u64; lane.events.len()];
        for (index, event) in lane.events.iter().enumerate() {
            match event.kind {
                EventKind::Enter { .. } => stack.push(index),
                EventKind::Exit => {
                    let enter = stack
                        .pop()
                        .expect("render requires a checked trace: exit without enter");
                    exit_ts[enter] = event.ts;
                }
                EventKind::Counter { .. } => {}
            }
        }
        assert!(
            stack.is_empty(),
            "render requires a checked trace: {} span(s) left open on lane {}",
            stack.len(),
            lane.id
        );
        let mut depth = 0usize;
        for (index, event) in lane.events.iter().enumerate() {
            match event.kind {
                EventKind::Enter { name } => {
                    depth += 1;
                    let _ = write!(
                        out,
                        "{}#{} {} [{} +{}]",
                        "  ".repeat(depth),
                        next_span_id,
                        name,
                        event.ts,
                        exit_ts[index] - event.ts
                    );
                    next_span_id += 1;
                    for attr in &event.attrs {
                        let _ = write!(out, " {}={}", attr.key, attr.value);
                    }
                    out.push('\n');
                }
                EventKind::Exit => depth -= 1,
                EventKind::Counter { name, value } => {
                    let _ = writeln!(
                        out,
                        "{}{}={} @{}",
                        "  ".repeat(depth + 1),
                        name,
                        value,
                        event.ts
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lane::{TraceConfig, Tracer};

    #[test]
    fn renders_nested_spans_with_ids_and_attrs() {
        let t = Tracer::new(TraceConfig::default());
        let mut lane = t.lane(0, "search");
        let outer = lane.enter("layer");
        lane.attr("name", "conv1");
        let inner = lane.enter("candidate");
        lane.attr("dataflow", "csk");
        lane.counter("sets", 3);
        lane.exit(inner);
        lane.exit(outer);
        let trace = Trace::from_lanes(t.config(), vec![lane]);
        trace.check().unwrap();
        let text = render_tree(&trace);
        let expected = "lane 0 \"search\"\n\
                        \x20 #0 layer [0 +4] name=conv1\n\
                        \x20   #1 candidate [1 +2] dataflow=csk\n\
                        \x20     sets=3 @2\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn span_ids_continue_across_lanes() {
        let t = Tracer::new(TraceConfig::default());
        let mut a = t.lane(0, "a");
        let g = a.enter("x");
        a.exit(g);
        let mut b = t.lane(1, "b");
        let g = b.enter("y");
        b.exit(g);
        let text = render_tree(&Trace::from_lanes(t.config(), vec![a, b]));
        assert!(text.contains("#0 x"));
        assert!(text.contains("#1 y"));
    }

    #[test]
    fn rendering_matches_span_ids_helper() {
        let t = Tracer::new(TraceConfig::default());
        let mut lane = t.lane(0, "l");
        let g0 = lane.enter("p");
        let g1 = lane.enter("q");
        lane.exit(g1);
        lane.exit(g0);
        let trace = Trace::from_lanes(t.config(), vec![lane]);
        let ids = trace.span_ids();
        let text = render_tree(&trace);
        for (_, _, id) in ids {
            assert!(text.contains(&format!("#{id} ")));
        }
    }
}
