//! The drained, merged trace and its well-formedness checks.

use crate::event::{Event, EventKind, TraceError};
use crate::lane::{ClockMode, Lane, TraceConfig};
use std::fmt;

/// One lane of a drained trace.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneData {
    /// Lane id (sort key; derived from work order by the recorder).
    pub id: u32,
    /// Human-readable lane name.
    pub name: String,
    /// Events in recording order.
    pub events: Vec<Event>,
}

/// A drained trace: lanes merged in deterministic id order.
///
/// Span identity is positional — [`Trace::span_ids`] numbers spans by
/// walking lanes in id order and events in recording order — so two
/// runs of the same deterministic computation assign identical ids,
/// regardless of how many threads recorded the lanes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    lanes: Vec<LaneData>,
    clock: ClockMode,
}

/// Aggregate shape of a trace, for one-line reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Number of non-empty lanes.
    pub lanes: usize,
    /// Total spans (matched enter/exit pairs).
    pub spans: u64,
    /// Total counter samples.
    pub counters: u64,
    /// Total events of any kind.
    pub events: u64,
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} spans, {} counters on {} lanes",
            self.spans, self.counters, self.lanes
        )
    }
}

impl Trace {
    /// An empty trace (what disabled tracers drain to).
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Merges drained lanes into a trace. Empty lanes are dropped;
    /// the rest sort by lane id, making the result independent of the
    /// order lanes are handed in (e.g. thread completion order).
    #[must_use]
    pub fn from_lanes(config: TraceConfig, lanes: Vec<Lane>) -> Self {
        let mut data: Vec<LaneData> = lanes
            .into_iter()
            .filter(|l| !l.is_empty())
            .map(|l| LaneData {
                id: l.id,
                name: l.name,
                events: l.events,
            })
            .collect();
        data.sort_by_key(|l| l.id);
        Self {
            lanes: data,
            clock: config.clock,
        }
    }

    /// Builds a trace from raw lane data, bypassing the [`Lane`]
    /// recording API. The result carries no invariants — callers are
    /// expected to run [`Trace::check`]. This is the entry point for
    /// external producers (and for tests exercising `check` against
    /// malformed input).
    #[must_use]
    pub fn from_raw_lanes(clock: ClockMode, mut lanes: Vec<LaneData>) -> Self {
        lanes.retain(|l| !l.events.is_empty());
        lanes.sort_by_key(|l| l.id);
        Self { lanes, clock }
    }

    /// The clock mode the trace was recorded under.
    #[must_use]
    pub fn clock(&self) -> ClockMode {
        self.clock
    }

    /// Lanes in id order.
    #[must_use]
    pub fn lanes(&self) -> &[LaneData] {
        &self.lanes
    }

    /// Whether the trace holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Appends another trace's lanes, offsetting their ids to follow
    /// this trace's largest id (used to attach schedule Gantt lanes to
    /// a search trace before export).
    pub fn absorb(&mut self, other: Trace) {
        let base = self.lanes.iter().map(|l| l.id + 1).max().unwrap_or(0);
        for mut lane in other.lanes {
            lane.id += base;
            self.lanes.push(lane);
        }
    }

    /// Stable per-span ids: walking lanes in id order and events in
    /// recording order, the *n*-th `Enter` event gets id *n*. Returns
    /// `(lane_index, event_index, span_id)` triples.
    #[must_use]
    pub fn span_ids(&self) -> Vec<(usize, usize, u64)> {
        let mut ids = Vec::new();
        let mut next = 0u64;
        for (li, lane) in self.lanes.iter().enumerate() {
            for (ei, event) in lane.events.iter().enumerate() {
                if matches!(event.kind, EventKind::Enter { .. }) {
                    ids.push((li, ei, next));
                    next += 1;
                }
            }
        }
        ids
    }

    /// Checks trace well-formedness: unique lane ids, balanced
    /// enter/exit per lane, non-decreasing timestamps per lane
    /// (strictly increasing under the logical clock). Nesting is
    /// structural — every span's extent is its enter/exit pair, so a
    /// balanced, monotone lane always nests properly; what can go
    /// wrong (orphan exits, spans left open, time regressions) is
    /// exactly what this reports.
    ///
    /// # Errors
    ///
    /// The first [`TraceError`] encountered, scanning lanes in id
    /// order.
    pub fn check(&self) -> Result<(), TraceError> {
        for pair in self.lanes.windows(2) {
            if pair[0].id == pair[1].id {
                return Err(TraceError::DuplicateLane { lane: pair[0].id });
            }
        }
        for lane in &self.lanes {
            let mut open = 0usize;
            let mut last_ts: Option<u64> = None;
            for (index, event) in lane.events.iter().enumerate() {
                if let Some(prev) = last_ts {
                    if event.ts < prev {
                        return Err(TraceError::NonMonotoneTimestamp {
                            lane: lane.id,
                            index,
                        });
                    }
                    if self.clock == ClockMode::Logical && event.ts == prev {
                        return Err(TraceError::DuplicateTick {
                            lane: lane.id,
                            index,
                        });
                    }
                }
                last_ts = Some(event.ts);
                match event.kind {
                    EventKind::Enter { .. } => open += 1,
                    EventKind::Exit => {
                        if open == 0 {
                            return Err(TraceError::ExitWithoutEnter {
                                lane: lane.id,
                                index,
                            });
                        }
                        open -= 1;
                    }
                    EventKind::Counter { .. } => {}
                }
            }
            if open > 0 {
                return Err(TraceError::UnbalancedEnter {
                    lane: lane.id,
                    open,
                });
            }
        }
        Ok(())
    }

    /// Aggregate counts for one-line reports.
    #[must_use]
    pub fn summary(&self) -> TraceSummary {
        let mut s = TraceSummary {
            lanes: self.lanes.len(),
            ..TraceSummary::default()
        };
        for lane in &self.lanes {
            for event in &lane.events {
                s.events += 1;
                match event.kind {
                    EventKind::Enter { .. } => s.spans += 1,
                    EventKind::Counter { .. } => s.counters += 1,
                    EventKind::Exit => {}
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lane::Tracer;

    fn tracer() -> Tracer {
        Tracer::new(TraceConfig::default())
    }

    #[test]
    fn lanes_sort_by_id_not_arrival_order() {
        let t = tracer();
        let mut a = t.lane(5, "late");
        let g = a.enter("x");
        a.exit(g);
        let mut b = t.lane(1, "early");
        let g = b.enter("y");
        b.exit(g);
        let trace = Trace::from_lanes(t.config(), vec![a, b]);
        assert_eq!(trace.lanes()[0].id, 1);
        assert_eq!(trace.lanes()[1].id, 5);
        trace.check().unwrap();
    }

    #[test]
    fn empty_lanes_are_dropped() {
        let t = tracer();
        let empty = t.lane(0, "empty");
        let trace = Trace::from_lanes(t.config(), vec![empty]);
        assert!(trace.is_empty());
        assert_eq!(trace.summary(), TraceSummary::default());
    }

    #[test]
    fn span_ids_walk_lanes_in_order() {
        let t = tracer();
        let mut a = t.lane(0, "a");
        let outer = a.enter("o");
        let inner = a.enter("i");
        a.exit(inner);
        a.exit(outer);
        let mut b = t.lane(1, "b");
        let g = b.enter("z");
        b.exit(g);
        let trace = Trace::from_lanes(t.config(), vec![b, a]);
        let ids = trace.span_ids();
        assert_eq!(ids, vec![(0, 0, 0), (0, 1, 1), (1, 0, 2)]);
    }

    #[test]
    fn check_rejects_duplicate_lane_ids() {
        let t = tracer();
        let mut a = t.lane(3, "a");
        let g = a.enter("x");
        a.exit(g);
        let mut b = t.lane(3, "b");
        let g = b.enter("y");
        b.exit(g);
        let trace = Trace::from_lanes(t.config(), vec![a, b]);
        assert_eq!(trace.check(), Err(TraceError::DuplicateLane { lane: 3 }));
    }

    #[test]
    fn check_rejects_hand_built_malformed_lanes() {
        use crate::event::{Event, EventKind};
        let lane = LaneData {
            id: 0,
            name: "bad".into(),
            events: vec![Event {
                ts: 0,
                kind: EventKind::Exit,
                attrs: Vec::new(),
            }],
        };
        let trace = Trace {
            lanes: vec![lane],
            clock: ClockMode::Logical,
        };
        assert_eq!(
            trace.check(),
            Err(TraceError::ExitWithoutEnter { lane: 0, index: 0 })
        );
    }

    #[test]
    fn absorb_offsets_lane_ids() {
        let t = tracer();
        let mut a = t.lane(0, "search");
        let g = a.enter("s");
        a.exit(g);
        let mut trace = Trace::from_lanes(t.config(), vec![a]);
        let mut b = t.lane(0, "core0");
        let g = b.enter("op");
        b.exit(g);
        let gantt = Trace::from_lanes(t.config(), vec![b]);
        trace.absorb(gantt);
        assert_eq!(trace.lanes().len(), 2);
        assert_eq!(trace.lanes()[1].id, 1);
        trace.check().unwrap();
    }

    #[test]
    fn summary_counts_spans_and_counters() {
        let t = tracer();
        let mut a = t.lane(0, "a");
        let g = a.enter("s");
        a.counter("c", 1);
        a.counter("c", 2);
        a.exit(g);
        let s = Trace::from_lanes(t.config(), vec![a]).summary();
        assert_eq!(s.lanes, 1);
        assert_eq!(s.spans, 1);
        assert_eq!(s.counters, 2);
        assert_eq!(s.events, 4);
        assert!(s.to_string().contains("1 spans"));
    }
}
