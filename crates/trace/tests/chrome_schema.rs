//! Chrome trace-event schema conformance: parse the exporter's JSON
//! back with the crate's own parser and validate every event against
//! the trace-event format (`ph`, `ts`, `dur`, `pid`/`tid`, `args`),
//! plus nesting validity of the `"X"` complete events per thread.

use flexer_trace::json::{self, Json};
use flexer_trace::{chrome, ClockMode, Trace, TraceConfig, TraceDetail, Tracer};

/// A representative trace: two lanes, nested spans with attributes of
/// every value type, counters, and overlapping sibling spans.
fn sample_trace(clock: ClockMode) -> Trace {
    let tracer = Tracer::new(TraceConfig {
        clock,
        detail: TraceDetail::Memory,
    });
    let mut search = tracer.lane(0, "search");
    let root = search.enter("network");
    search.attr("layers", 2u64);
    search.attr("prune", true);
    let layer = search.enter("layer");
    search.attr("name", "conv1");
    search.attr("score", 0.25f64);
    search.attr("delta", -4i64);
    search.counter("spm_used", 1024);
    search.exit(layer);
    let layer = search.enter("layer");
    search.attr("name", "conv\"2\"");
    search.counter("spm_used", 512);
    search.exit(layer);
    search.exit(root);

    let mut worker = tracer.lane(1, "candidate 1");
    let cand = worker.enter("candidate");
    worker.attr("dataflow", "csk");
    let step = worker.enter("step");
    worker.exit(step);
    let step = worker.enter("step");
    worker.exit(step);
    worker.exit(cand);

    let trace = Trace::from_lanes(tracer.config(), vec![search, worker]);
    trace.check().expect("sample trace is well-formed");
    trace
}

fn events(doc: &Json) -> &[Json] {
    doc.get("traceEvents")
        .expect("top-level traceEvents")
        .as_array()
        .expect("traceEvents is an array")
}

fn field_num(event: &Json, key: &str) -> f64 {
    event
        .get(key)
        .unwrap_or_else(|| panic!("event missing {key:?}: {event:?}"))
        .as_num()
        .unwrap_or_else(|| panic!("{key:?} is not a number: {event:?}"))
}

fn field_str<'j>(event: &'j Json, key: &str) -> &'j str {
    event
        .get(key)
        .unwrap_or_else(|| panic!("event missing {key:?}: {event:?}"))
        .as_str()
        .unwrap_or_else(|| panic!("{key:?} is not a string: {event:?}"))
}

#[test]
fn export_parses_and_every_event_matches_the_schema() {
    let doc = json::parse(&chrome::to_chrome_json(&sample_trace(ClockMode::Logical)))
        .expect("export is valid JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    let events = events(&doc);
    assert!(!events.is_empty());
    let mut saw = (false, false, false); // (M, X, C)
    for event in events {
        let ph = field_str(event, "ph");
        assert_eq!(field_num(event, "pid"), 1.0);
        let tid = field_num(event, "tid");
        assert!(tid.fract() == 0.0 && tid >= 0.0, "tid is an id: {event:?}");
        match ph {
            "M" => {
                saw.0 = true;
                assert_eq!(field_str(event, "name"), "thread_name");
                let args = event.get("args").expect("M events carry args");
                assert!(args.get("name").and_then(Json::as_str).is_some());
            }
            "X" => {
                saw.1 = true;
                assert!(!field_str(event, "name").is_empty());
                assert!(field_num(event, "ts") >= 0.0);
                assert!(field_num(event, "dur") >= 0.0);
                if let Some(args) = event.get("args") {
                    let members = args.as_object().expect("args is an object");
                    assert!(!members.is_empty());
                }
            }
            "C" => {
                saw.2 = true;
                let name = field_str(event, "name");
                let args = event.get("args").expect("C events carry args");
                let value = args
                    .get(name)
                    .expect("counter args keyed by counter name")
                    .as_num()
                    .expect("counter value is a number");
                assert!(value >= 0.0);
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert_eq!(saw, (true, true, true), "all three phases exported");
}

#[test]
fn complete_events_nest_validly_per_thread() {
    for clock in [ClockMode::Logical, ClockMode::Wall] {
        let doc = json::parse(&chrome::to_chrome_json(&sample_trace(clock))).unwrap();
        // Group X events by tid, in emission order. The exporter walks
        // each lane's exits in order, so sibling/child intervals must
        // fit inside any still-open ancestor: for every pair on one
        // tid, intervals either nest or are disjoint — never overlap
        // partially.
        let mut by_tid: Vec<(u64, Vec<(f64, f64)>)> = Vec::new();
        for event in events(&doc) {
            if event.get("ph").and_then(Json::as_str) != Some("X") {
                continue;
            }
            let tid = field_num(event, "tid") as u64;
            let start = field_num(event, "ts");
            let end = start + field_num(event, "dur");
            match by_tid.iter_mut().find(|(t, _)| *t == tid) {
                Some((_, spans)) => spans.push((start, end)),
                None => by_tid.push((tid, vec![(start, end)])),
            }
        }
        assert!(by_tid.len() >= 2, "both lanes exported X events");
        for (tid, spans) in &by_tid {
            for (i, a) in spans.iter().enumerate() {
                for b in spans.iter().skip(i + 1) {
                    let nested = (a.0 <= b.0 && b.1 <= a.1) || (b.0 <= a.0 && a.1 <= b.1);
                    let disjoint = a.1 <= b.0 || b.1 <= a.0;
                    assert!(
                        nested || disjoint,
                        "tid {tid}: spans {a:?} and {b:?} partially overlap ({clock:?})"
                    );
                }
            }
        }
    }
}

#[test]
fn attribute_values_survive_the_round_trip() {
    let doc = json::parse(&chrome::to_chrome_json(&sample_trace(ClockMode::Logical))).unwrap();
    let layer_events: Vec<&Json> = events(&doc)
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("layer"))
        .collect();
    assert_eq!(layer_events.len(), 2);
    let args = layer_events[0].get("args").unwrap();
    assert_eq!(args.get("name").and_then(Json::as_str), Some("conv1"));
    assert_eq!(args.get("score").and_then(Json::as_num), Some(0.25));
    assert_eq!(args.get("delta").and_then(Json::as_num), Some(-4.0));
    // Quotes in attribute strings must be escaped, not truncate JSON.
    let args = layer_events[1].get("args").unwrap();
    assert_eq!(args.get("name").and_then(Json::as_str), Some("conv\"2\""));
    let network = events(&doc)
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("network"))
        .unwrap();
    let args = network.get("args").unwrap();
    assert_eq!(args.get("layers").and_then(Json::as_num), Some(2.0));
    assert_eq!(args.get("prune"), Some(&Json::Bool(true)));
}

#[test]
fn logical_export_is_byte_identical_across_runs() {
    let a = chrome::to_chrome_json(&sample_trace(ClockMode::Logical));
    let b = chrome::to_chrome_json(&sample_trace(ClockMode::Logical));
    assert_eq!(a, b);
}

#[test]
fn wall_export_still_parses() {
    let doc = json::parse(&chrome::to_chrome_json(&sample_trace(ClockMode::Wall)))
        .expect("wall-clock export is valid JSON");
    assert!(!events(&doc).is_empty());
}
