//! Trace-conformance property suite: every trace the recording API can
//! produce is well-formed (balanced, properly nested, monotone), and
//! `Trace::check` rejects each way a hand-built trace can violate
//! those invariants.

use flexer_trace::{
    ClockMode, Event, EventKind, Lane, LaneData, Trace, TraceConfig, TraceError, Tracer,
};
use proptest::prelude::*;

/// One step of a random recording program. Exits and attrs only apply
/// when legal (a span is open), so every program drives the `Lane` API
/// within its contract.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    Enter,
    Exit,
    Counter,
    Attr,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop::sample::select(vec![Op::Enter, Op::Exit, Op::Counter, Op::Attr])
}

/// Replays a program against a lane, keeping the guard stack the
/// caller-side LIFO discipline requires, and closing every span left
/// open at the end (as instrumented code does on scope exit).
fn record(mut lane: Lane, ops: &[Op]) -> Lane {
    const NAMES: [&str; 3] = ["alpha", "beta", "gamma"];
    let mut guards = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Enter => guards.push(lane.enter(NAMES[i % NAMES.len()])),
            Op::Exit => {
                if let Some(g) = guards.pop() {
                    lane.exit(g);
                }
            }
            Op::Counter => lane.counter("gauge", i as u64),
            Op::Attr => lane.attr("step", i),
        }
    }
    while let Some(g) = guards.pop() {
        lane.exit(g);
    }
    lane
}

fn build(config: TraceConfig, programs: &[Vec<Op>]) -> Trace {
    let tracer = Tracer::new(config);
    let lanes = programs
        .iter()
        .enumerate()
        .map(|(i, ops)| record(tracer.lane(i as u32, format!("lane{i}")), ops))
        .collect();
    Trace::from_lanes(tracer.config(), lanes)
}

/// Matched `(enter_index, exit_index)` pairs of one lane, recovered by
/// replaying the LIFO discipline.
fn span_pairs(lane: &LaneData) -> Vec<(usize, usize)> {
    let mut stack = Vec::new();
    let mut pairs = Vec::new();
    for (i, event) in lane.events.iter().enumerate() {
        match event.kind {
            EventKind::Enter { .. } => stack.push(i),
            EventKind::Exit => pairs.push((stack.pop().expect("balanced"), i)),
            EventKind::Counter { .. } => {}
        }
    }
    assert!(stack.is_empty(), "balanced");
    pairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the recording API is asked to do, the drained trace
    /// passes `check`: enters and exits balance on every lane.
    #[test]
    fn recorded_traces_are_well_formed(
        programs in prop::collection::vec(
            prop::collection::vec(op_strategy(), 0..40),
            1..4,
        ),
        wall in any::<bool>(),
    ) {
        let config = TraceConfig {
            clock: if wall { ClockMode::Wall } else { ClockMode::Logical },
            ..TraceConfig::default()
        };
        let trace = build(config, &programs);
        prop_assert_eq!(trace.check(), Ok(()));
        for lane in trace.lanes() {
            let enters = lane.events.iter()
                .filter(|e| matches!(e.kind, EventKind::Enter { .. }))
                .count();
            let exits = lane.events.iter()
                .filter(|e| matches!(e.kind, EventKind::Exit))
                .count();
            prop_assert_eq!(enters, exits);
        }
    }

    /// Parent spans strictly enclose their children under the logical
    /// clock: parent opens before the child opens and closes after the
    /// child closes.
    #[test]
    fn parents_strictly_enclose_children(
        ops in prop::collection::vec(op_strategy(), 0..60),
    ) {
        let trace = build(TraceConfig::default(), &[ops]);
        for lane in trace.lanes() {
            let pairs = span_pairs(lane);
            for &(pe, px) in &pairs {
                for &(ce, cx) in &pairs {
                    if pe < ce && cx < px {
                        prop_assert!(lane.events[pe].ts < lane.events[ce].ts);
                        prop_assert!(lane.events[cx].ts < lane.events[px].ts);
                    }
                }
            }
        }
    }

    /// Timestamps never go backwards within a lane, in either clock
    /// mode; under the logical clock they are strictly increasing.
    #[test]
    fn timestamps_are_monotone_per_lane(
        ops in prop::collection::vec(op_strategy(), 1..50),
        wall in any::<bool>(),
    ) {
        let config = TraceConfig {
            clock: if wall { ClockMode::Wall } else { ClockMode::Logical },
            ..TraceConfig::default()
        };
        let trace = build(config, &[ops]);
        for lane in trace.lanes() {
            for w in lane.events.windows(2) {
                if wall {
                    prop_assert!(w[0].ts <= w[1].ts);
                } else {
                    prop_assert!(w[0].ts < w[1].ts);
                }
            }
        }
    }

    /// Recording the same program twice yields identical traces, and
    /// the merged result is independent of lane hand-in order (it is a
    /// function of lane ids alone).
    #[test]
    fn recording_is_deterministic(
        programs in prop::collection::vec(
            prop::collection::vec(op_strategy(), 0..30),
            1..4,
        ),
    ) {
        let a = build(TraceConfig::default(), &programs);
        let b = build(TraceConfig::default(), &programs);
        prop_assert_eq!(&a, &b);

        let tracer = Tracer::new(TraceConfig::default());
        let mut lanes: Vec<Lane> = programs
            .iter()
            .enumerate()
            .map(|(i, ops)| record(tracer.lane(i as u32, format!("lane{i}")), ops))
            .collect();
        lanes.reverse();
        prop_assert_eq!(&a, &Trace::from_lanes(tracer.config(), lanes));
    }

    /// Span ids are contiguous from zero and anchored to Enter events.
    #[test]
    fn span_ids_are_contiguous(
        programs in prop::collection::vec(
            prop::collection::vec(op_strategy(), 0..30),
            1..4,
        ),
    ) {
        let trace = build(TraceConfig::default(), &programs);
        for (n, (li, ei, id)) in trace.span_ids().into_iter().enumerate() {
            prop_assert_eq!(id, n as u64);
            prop_assert!(matches!(
                trace.lanes()[li].events[ei].kind,
                EventKind::Enter { .. }
            ));
        }
    }

    /// Corrupting a valid trace trips `check`: dropping an exit leaves
    /// a span open, injecting a leading exit orphans it, and rewinding
    /// a timestamp breaks monotonicity.
    #[test]
    fn check_catches_corruption(
        ops in prop::collection::vec(op_strategy(), 4..40),
        which in 0u8..3,
    ) {
        let trace = build(TraceConfig::default(), &[ops]);
        let Some(lane) = trace.lanes().first() else {
            // Program recorded nothing; nothing to corrupt.
            return Ok(());
        };
        let mut events = lane.events.clone();
        let corrupted = match which {
            0 => {
                let Some(pos) = events
                    .iter()
                    .position(|e| matches!(e.kind, EventKind::Exit))
                else {
                    return Ok(());
                };
                events.remove(pos);
                TraceError::UnbalancedEnter { lane: 0, open: 1 }
            }
            1 => {
                events.insert(0, Event {
                    ts: 0,
                    kind: EventKind::Exit,
                    attrs: Vec::new(),
                });
                TraceError::ExitWithoutEnter { lane: 0, index: 0 }
            }
            _ => {
                if events.len() < 2 {
                    return Ok(());
                }
                let last = events.len() - 1;
                events[last].ts = 0;
                TraceError::NonMonotoneTimestamp { lane: 0, index: last }
            }
        };
        let bad = Trace::from_raw_lanes(
            ClockMode::Logical,
            vec![LaneData { id: 0, name: "bad".into(), events }],
        );
        let result = bad.check();
        prop_assert!(result.is_err(), "corruption {which} not caught");
        if which == 1 {
            // The injected orphan exit is always the first error seen.
            prop_assert_eq!(result, Err(corrupted));
        }
    }
}

/// Duplicate logical ticks are rejected even though timestamps do not
/// regress — ticks must be strictly increasing.
#[test]
fn check_rejects_duplicate_logical_ticks() {
    let events = vec![
        Event {
            ts: 0,
            kind: EventKind::Enter { name: "a" },
            attrs: Vec::new(),
        },
        Event {
            ts: 0,
            kind: EventKind::Exit,
            attrs: Vec::new(),
        },
    ];
    let lane = LaneData {
        id: 7,
        name: "dup".into(),
        events,
    };
    let trace = Trace::from_raw_lanes(ClockMode::Logical, vec![lane.clone()]);
    assert_eq!(
        trace.check(),
        Err(TraceError::DuplicateTick { lane: 7, index: 1 })
    );
    // The same lane is fine under the wall clock, where equal
    // timestamps are legal.
    let trace = Trace::from_raw_lanes(ClockMode::Wall, vec![lane]);
    assert_eq!(trace.check(), Ok(()));
}

/// Two lanes claiming one id make span identity ambiguous.
#[test]
fn check_rejects_duplicate_lane_ids() {
    let mk = |name: &str| LaneData {
        id: 3,
        name: name.into(),
        events: vec![
            Event {
                ts: 0,
                kind: EventKind::Enter { name: "x" },
                attrs: Vec::new(),
            },
            Event {
                ts: 1,
                kind: EventKind::Exit,
                attrs: Vec::new(),
            },
        ],
    };
    let trace = Trace::from_raw_lanes(ClockMode::Logical, vec![mk("a"), mk("b")]);
    assert_eq!(trace.check(), Err(TraceError::DuplicateLane { lane: 3 }));
}
