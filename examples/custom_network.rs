//! Schedule a user-defined network on a user-defined accelerator.
//!
//! Demonstrates the public API a downstream user would touch: build
//! custom [`ConvLayer`]s with the builder, assemble a [`Network`],
//! configure a non-Table-1 accelerator with [`ArchConfigBuilder`], and
//! read the per-layer schedule report.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example custom_network
//! ```

use flexer::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small edge-vision backbone: strided stem, two residual-style
    // 3x3 stages, a pointwise expansion head.
    let network = Network::new(
        "edge-backbone",
        vec![
            ConvLayerBuilder::new("stem", 3, 96, 96, 32)
                .kernel(5, 5)
                .stride(2)
                .padding(2)
                .build()?,
            ConvLayer::new("stage1_a", 32, 48, 48, 64)?,
            ConvLayer::new("stage1_b", 64, 48, 48, 64)?,
            ConvLayerBuilder::new("reduce1", 64, 48, 48, 96)
                .kernel(3, 3)
                .stride(2)
                .padding(1)
                .build()?,
            ConvLayer::new("stage2_a", 96, 24, 24, 96)?,
            ConvLayer::new("stage2_b", 96, 24, 24, 96)?,
            ConvLayerBuilder::new("head", 96, 24, 24, 256).build()?,
        ],
    )?;

    // A 3-core accelerator with a 384 KiB buffer and a 48 B/cycle
    // DRAM link — deliberately none of the paper's presets.
    let arch = ArchConfigBuilder::new(3, 384 * 1024, 48)
        .dram_latency(80)
        .build()?;
    println!("network: {network}");
    println!("arch   : {arch}\n");

    let driver = Flexer::new(arch).with_options(SearchOptions::quick());
    let comparison = driver.compare_network(&network)?;

    println!(
        "{:<10} {:>12} {:>12} {:>9} {:>9} {:>22}",
        "layer", "ooo cycles", "static cyc", "speedup", "xfer red", "winning tiling"
    );
    for (lc, lr) in comparison.per_layer().zip(comparison.flexer().layers()) {
        println!(
            "{:<10} {:>12} {:>12} {:>9.2} {:>9.2} {:>14} / {}",
            lc.layer,
            lc.flexer_latency,
            lc.baseline_latency,
            lc.speedup(),
            lc.transfer_reduction(),
            lr.factors,
            lr.dataflow,
        );
    }
    println!(
        "\nend-to-end: {:.2}x speedup, {:.2}x less data transferred",
        comparison.speedup(),
        comparison.transfer_reduction()
    );
    println!(
        "memoized {} distinct layer shapes across {} layers",
        driver.cached_shapes(),
        network.layers().len()
    );
    Ok(())
}
