//! Layer explorer: sweep every (tiling, dataflow) pair of one layer
//! with both schedulers and print the latency/traffic scatter — the
//! data behind the paper's Figure 1 — plus each candidate's
//! admissible lower bound under the search metric and the proven gap
//! between the real OoO schedule and that bound (the quantity the
//! anytime search reports when a deadline cuts it short).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example layer_explorer [layer-name] [arch]
//! ```

use flexer::arch::SystolicModel;
use flexer::prelude::*;
use flexer::sched::sweep_tilings;
use flexer::solve::lower_bound;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let layer_name = args.next().unwrap_or_else(|| "conv4_2".to_owned());
    let arch_name = args.next().unwrap_or_else(|| "arch1".to_owned());

    let network = networks::vgg16();
    let layer = network
        .layer_by_name(&layer_name)
        .unwrap_or_else(|| panic!("vgg16 has no layer {layer_name:?}"))
        .clone();
    let arch = ArchConfig::preset(arch_name.parse()?);
    println!("# {layer} on {arch}");

    let opts = SearchOptions::quick();
    let (ooo, baseline) = sweep_tilings(&layer, &arch, &opts)?;

    // The solver's admissible per-tiling lower bound — the same
    // quantity the seeded search ranks candidates by and the anytime
    // search proves its optimality gap against.
    let perf = SystolicModel::new(&arch);
    println!(
        "# {:<18} {:<22} {:>12} {:>14} {:>12} {:>14} {:>8} {:>8} {:>12} {:>6}",
        "tiling",
        "dataflow",
        "ooo_cyc",
        "ooo_bytes",
        "static_cyc",
        "static_bytes",
        "speedup",
        "x_less_B",
        "bound_cyc",
        "gap"
    );
    for (o, s) in ooo.iter().zip(&baseline) {
        assert_eq!(o.factors, s.factors);
        assert_eq!(o.dataflow, s.dataflow);
        let bound = lower_bound(&layer, &arch, &perf, &o.factors);
        let bound_score = bound.score(opts.metric);
        let gap = if bound_score > 0.0 {
            o.score / bound_score
        } else {
            f64::INFINITY
        };
        println!(
            "{:<20} {:<22} {:>12} {:>14} {:>12} {:>14} {:>8.2} {:>8.2} {:>12} {:>6.2}",
            o.factors.to_string(),
            o.dataflow.to_string(),
            o.latency,
            o.transfer_bytes,
            s.latency,
            s.transfer_bytes,
            s.latency as f64 / o.latency as f64,
            s.transfer_bytes as f64 / o.transfer_bytes as f64,
            bound.latency,
            gap,
        );
    }

    // The Figure-1 takeaway: the best OoO point versus the best static
    // point under the latency x transfer metric.
    let metric = Metric::LatencyTimesTransfer;
    let best = |pts: &[flexer::sched::SchedulePoint]| {
        pts.iter()
            .min_by(|a, b| a.score.total_cmp(&b.score))
            .copied()
            .expect("sweep is non-empty")
    };
    let (bo, bs) = (best(&ooo), best(&baseline));
    println!(
        "\nbest OoO    : {} / {} -> {} cycles, {} B",
        bo.factors, bo.dataflow, bo.latency, bo.transfer_bytes
    );
    println!(
        "best static : {} / {} -> {} cycles, {} B",
        bs.factors, bs.dataflow, bs.latency, bs.transfer_bytes
    );
    println!(
        "metric ({metric}): OoO {:.3e} vs static {:.3e}",
        bo.score, bs.score
    );
    Ok(())
}
