//! Ablation of Flexer's priority function and memory-management
//! policy on a single layer — a miniature of the paper's Figure 12.
//!
//! Compares the default §4.3 priority against Table 2's Priority1
//! (minimal data movement) and Priority2 (minimal spilling), and the
//! Algorithm-2 spill heuristic against MemPolicy1 (first-fit) and
//! MemPolicy2 (smallest-first).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example policy_ablation
//! ```

use flexer::prelude::*;
use flexer::sched::search_layer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = networks::resnet50();
    let layer = network
        .layer_by_name("conv3_1_1")
        .expect("resnet50 has conv3_1_1")
        .clone();
    let arch = ArchConfig::preset(ArchPreset::Arch6);
    println!("layer: {layer}");
    println!("arch : {arch}\n");

    let variants: [(&str, PriorityPolicy, SpillPolicyChoice); 5] = [
        (
            "flexer default",
            PriorityPolicy::FlexerDefault,
            SpillPolicyChoice::Flexer,
        ),
        (
            "priority1 (min transfer)",
            PriorityPolicy::MinTransfer,
            SpillPolicyChoice::Flexer,
        ),
        (
            "priority2 (min spilling)",
            PriorityPolicy::MinSpill,
            SpillPolicyChoice::Flexer,
        ),
        (
            "mempolicy1 (first fit)",
            PriorityPolicy::FlexerDefault,
            SpillPolicyChoice::FirstFit,
        ),
        (
            "mempolicy2 (small first)",
            PriorityPolicy::FlexerDefault,
            SpillPolicyChoice::SmallestFirst,
        ),
    ];

    let mut default_score = None;
    println!(
        "{:<26} {:>10} {:>12} {:>14}",
        "variant", "cycles", "bytes", "metric vs default"
    );
    for (name, priority, spill) in variants {
        let opts = SearchOptions {
            priority,
            spill,
            ..SearchOptions::quick()
        };
        let result = search_layer(&layer, &arch, &opts)?;
        let score = result.score;
        let default = *default_score.get_or_insert(score);
        println!(
            "{:<26} {:>10} {:>12} {:>14.3}",
            name,
            result.schedule.latency(),
            result.schedule.transfer_bytes(),
            score / default,
        );
    }
    println!("\n(lower is better; 1.000 = the default configuration)");
    Ok(())
}
