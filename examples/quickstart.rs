//! Quickstart: schedule one convolution layer with Flexer and compare
//! against the best static loop-order schedule.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use flexer::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // VGG-16's conv4_2 — the layer the paper dissects in Figure 10 —
    // on arch1: two NPU cores sharing a 256 KiB buffer over a
    // 32 B/cycle DRAM link (Table 1).
    let network = networks::vgg16();
    let layer = network
        .layer_by_name("conv4_2")
        .expect("vgg16 has conv4_2")
        .clone();
    let arch = ArchConfig::preset(ArchPreset::Arch1);
    println!("layer : {layer}");
    println!("arch  : {arch}");

    // `quick()` trims the search budgets so this example finishes in
    // seconds; drop it for the paper-scale exhaustive search.
    let driver = Flexer::new(arch).with_options(SearchOptions::quick());

    let ooo = driver.schedule_layer(&layer)?;
    println!(
        "\nFlexer (out-of-order): {:>12} cycles  {:>12} B  [{} / {}]",
        ooo.schedule.latency(),
        ooo.schedule.transfer_bytes(),
        ooo.factors,
        ooo.dataflow,
    );

    let baseline = driver.baseline_layer(&layer)?;
    println!(
        "best static order    : {:>12} cycles  {:>12} B  [{} / {}]",
        baseline.schedule.latency(),
        baseline.schedule.transfer_bytes(),
        baseline.factors,
        baseline.dataflow,
    );

    let speedup = baseline.schedule.latency() as f64 / ooo.schedule.latency() as f64;
    let reduction =
        baseline.schedule.transfer_bytes() as f64 / ooo.schedule.transfer_bytes() as f64;
    println!("\nspeedup {speedup:.2}x, data-transfer reduction {reduction:.2}x");
    println!(
        "searched {} (tiling, dataflow) pairs per scheduler",
        ooo.evaluated
    );

    // Lower the winning schedule into the NPU command stream a real
    // sequencer would execute (first few commands shown).
    let model = SystolicModel::new(driver.arch());
    let dfg = Dfg::build(&layer, ooo.factors, ooo.dataflow, &model, driver.arch())?;
    let (_, program) =
        flexer::sched::OooScheduler::new(&dfg, driver.arch(), &model).schedule_with_program()?;
    program.check(&dfg)?;
    println!("\nlowered program ({} commands, validated):", program.len());
    for line in program.render().lines().take(9) {
        println!("  {line}");
    }
    Ok(())
}
