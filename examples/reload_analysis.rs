//! Reload analysis of one layer: where does the off-chip traffic go,
//! how often is each data type reloaded, and what does the execution
//! look like on the cores and the DMA channel?
//!
//! A miniature of the paper's Figure-10 methodology built from the
//! public API: schedule a layer with both schedulers, compare against
//! the infinite-buffer reference, and render the timelines.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example reload_analysis [layer-name]
//! ```

use flexer::prelude::*;
use flexer::sim::{render_gantt, to_tsv, TrafficStats};

fn traffic_row(tag: &str, t: &TrafficStats) {
    println!(
        "{:<9} {:>11} {:>11} {:>11} {:>11} {:>12}   IN x{} WT x{} OT x{}",
        tag,
        t.class_bytes(TrafficClass::Input),
        t.class_bytes(TrafficClass::Weight),
        t.class_bytes(TrafficClass::Psum),
        t.class_bytes(TrafficClass::Output),
        t.total_bytes(),
        t.max_loads(TileKind::Input),
        t.max_loads(TileKind::Weight),
        t.max_loads(TileKind::Output),
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let layer_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "conv4_2".to_owned());
    let network = networks::vgg16();
    let layer = network
        .layer_by_name(&layer_name)
        .unwrap_or_else(|| panic!("vgg16 has no layer {layer_name:?}"))
        .clone();
    let arch = ArchConfig::preset(ArchPreset::Arch6);
    println!("layer: {layer}");
    println!("arch : {arch}\n");

    let driver = Flexer::new(arch.clone()).with_options(SearchOptions::quick());
    let ooo = driver.schedule_layer(&layer)?;
    let baseline = driver.baseline_layer(&layer)?;

    // Figure-10-style traffic breakdown against the infinite-buffer
    // reference.
    let model = SystolicModel::new(&arch);
    let dfg = Dfg::build(&layer, ooo.factors, ooo.dataflow, &model, &arch)?;
    println!(
        "{:<9} {:>11} {:>11} {:>11} {:>11} {:>12}   max loads per tile",
        "schedule", "IN bytes", "WT bytes", "PS bytes", "OT bytes", "total"
    );
    traffic_row("on-chip", &onchip_reference_traffic(&dfg));
    traffic_row("flexer", ooo.schedule.traffic());
    traffic_row("static", baseline.schedule.traffic());

    for kind in TileKind::all() {
        println!(
            "reload variation {kind}: flexer={} static={}",
            ooo.schedule.traffic().has_reload_variation(kind),
            baseline.schedule.traffic().has_reload_variation(kind),
        );
    }

    // Execution timelines.
    println!("\nflexer (OoO), {}:", ooo.schedule);
    print!("{}", render_gantt(&ooo.schedule, 72));
    println!("\nbest static order, {}:", baseline.schedule);
    print!("{}", render_gantt(&baseline.schedule, 72));

    // Energy comparison: with off-chip accesses ~30x costlier than
    // on-chip ones, the traffic gap translates into energy.
    let energy_model = EnergyModel::default();
    let base_dfg = Dfg::build(&layer, baseline.factors, baseline.dataflow, &model, &arch)?;
    let e_flexer = schedule_energy(&dfg, &ooo.schedule, &energy_model);
    let e_static = schedule_energy(&base_dfg, &baseline.schedule, &energy_model);
    println!("\nenergy ({energy_model}):");
    println!("  flexer: {e_flexer}");
    println!("  static: {e_static}");
    println!(
        "  -> {:.2}x less energy",
        e_static.total_pj() / e_flexer.total_pj()
    );

    // Machine-readable event trace (first few rows).
    println!("\nfirst events of the OoO schedule (TSV):");
    for line in to_tsv(&ooo.schedule).lines().take(8) {
        println!("  {line}");
    }
    Ok(())
}
