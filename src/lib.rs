//! Umbrella crate for the Flexer reproduction workspace.
//!
//! This crate exists to host the workspace-spanning integration tests in
//! `tests/` and the runnable examples in `examples/`. The actual library
//! surface lives in the [`flexer`] facade crate and the per-subsystem
//! crates it re-exports.
//!
//! # Examples
//!
//! ```
//! use flexer_repro::prelude::*;
//!
//! let arch = ArchConfig::preset(ArchPreset::Arch1);
//! assert_eq!(arch.cores(), 2);
//! ```

/// Convenience re-exports of the most commonly used items across the
/// workspace, for use by examples and integration tests.
pub mod prelude {
    pub use flexer::prelude::*;
}
