//! End-to-end driver tests: whole (scaled) networks through the
//! [`Flexer`] driver, determinism, and memoization behaviour.

use flexer::prelude::*;

fn quick_driver(preset: ArchPreset) -> Flexer {
    Flexer::new(ArchConfig::preset(preset)).with_options(SearchOptions::quick())
}

#[test]
fn scaled_vgg16_schedules_end_to_end() {
    let net = scale_spatial(&networks::vgg16(), 8);
    let driver = quick_driver(ArchPreset::Arch1);
    let cmp = driver.compare_network(&net).unwrap();
    assert_eq!(cmp.flexer().layers().len(), 13);
    assert!(cmp.flexer().total_latency() > 0);
    assert!(cmp.flexer().total_transfer_bytes() > 0);
    // The OoO scheduler never loses the paper's metric end-to-end by
    // more than noise; typically it wins.
    let fm = cmp.flexer().total_latency() as f64 * cmp.flexer().total_transfer_bytes() as f64;
    let bm = cmp.baseline().total_latency() as f64 * cmp.baseline().total_transfer_bytes() as f64;
    assert!(
        fm <= bm * 1.15,
        "flexer metric {fm:.3e} vs baseline {bm:.3e}"
    );
}

#[test]
fn scaled_squeezenet_and_yolo_schedule_end_to_end() {
    for (net, scale) in [(networks::squeezenet(), 4), (networks::yolov2(), 16)] {
        let net = scale_spatial(&net, scale);
        let driver = quick_driver(ArchPreset::Arch5);
        let result = driver.schedule_network(&net).unwrap();
        assert_eq!(result.layers().len(), net.layers().len());
        for layer in result.layers() {
            assert!(layer.schedule.latency() > 0, "{}", layer.layer);
        }
    }
}

#[test]
fn scaled_resnet50_memoizes_repeated_blocks() {
    let net = scale_spatial(&networks::resnet50(), 8);
    let driver = quick_driver(ArchPreset::Arch2);
    let result = driver.schedule_network(&net).unwrap();
    // ResNet-50 has 53 conv layers but far fewer distinct shapes.
    assert_eq!(result.layers().len(), 53);
    assert!(driver.cached_shapes() < 53);
    let replays = result.layers().iter().filter(|l| l.evaluated == 1).count();
    assert!(replays >= 53 - driver.cached_shapes());
}

#[test]
fn scheduling_is_deterministic_across_runs_and_threads() {
    let net = scale_spatial(&networks::squeezenet(), 8);
    let slice = Network::new("slice", net.layers()[..5].to_vec()).unwrap();
    let mut serial = SearchOptions::quick();
    serial.threads = 1;
    let mut parallel = SearchOptions::quick();
    parallel.threads = 8;
    let a = Flexer::new(ArchConfig::preset(ArchPreset::Arch5))
        .with_options(serial)
        .schedule_network(&slice)
        .unwrap();
    let b = Flexer::new(ArchConfig::preset(ArchPreset::Arch5))
        .with_options(parallel.clone())
        .schedule_network(&slice)
        .unwrap();
    let c = Flexer::new(ArchConfig::preset(ArchPreset::Arch5))
        .with_options(parallel)
        .schedule_network(&slice)
        .unwrap();
    for ((x, y), z) in a.layers().iter().zip(b.layers()).zip(c.layers()) {
        assert_eq!(x.factors, y.factors);
        assert_eq!(x.dataflow, y.dataflow);
        assert_eq!(x.schedule.latency(), y.schedule.latency());
        assert_eq!(x.schedule.transfer_bytes(), y.schedule.transfer_bytes());
        assert_eq!(y.schedule.latency(), z.schedule.latency());
    }
}

#[test]
fn comparison_reports_are_consistent() {
    let net = Network::new(
        "t",
        vec![
            ConvLayer::new("a", 32, 14, 14, 32).unwrap(),
            ConvLayer::new("b", 32, 14, 14, 64).unwrap(),
        ],
    )
    .unwrap();
    let driver = quick_driver(ArchPreset::Arch1);
    let cmp = driver.compare_network(&net).unwrap();
    // Per-layer latencies sum to the totals the ratios are built from.
    let f_sum: u64 = cmp.per_layer().map(|l| l.flexer_latency).sum();
    let b_sum: u64 = cmp.per_layer().map(|l| l.baseline_latency).sum();
    assert_eq!(f_sum, cmp.flexer().total_latency());
    assert_eq!(b_sum, cmp.baseline().total_latency());
    let expected = b_sum as f64 / f_sum as f64;
    assert!((cmp.speedup() - expected).abs() < 1e-12);
}

#[test]
fn class_traffic_sums_to_total() {
    let net = scale_spatial(&networks::vgg16(), 16);
    let slice = Network::new("s", net.layers()[..4].to_vec()).unwrap();
    let driver = quick_driver(ArchPreset::Arch1);
    let result = driver.schedule_network(&slice).unwrap();
    let by_class: u64 = TrafficClass::all()
        .iter()
        .map(|&c| result.class_transfer_bytes(c))
        .sum();
    assert_eq!(by_class, result.total_transfer_bytes());
}
