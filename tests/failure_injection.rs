//! Failure-injection tests: undersized buffers, impossible layers and
//! degenerate configurations must produce typed errors, not panics or
//! silent nonsense.

use flexer::arch::SystolicModel;
use flexer::prelude::*;
use flexer::sched::{search_layer, OooScheduler, SchedError};
use flexer::spm::{AllocError, FlexerSpill, SpmMemory};
use flexer::tiling::{enumerate_tilings, TileId};

#[test]
fn undersized_buffer_yields_no_viable_tiling() {
    // 1 KiB of SPM cannot hold even one maximally tiled working set of
    // a wide layer.
    let arch = ArchConfigBuilder::new(2, 1024, 32).build().unwrap();
    let layer = ConvLayer::new("wide", 512, 28, 28, 512).unwrap();
    let err = search_layer(&layer, &arch, &SearchOptions::quick()).unwrap_err();
    assert!(matches!(err, SchedError::NoViableTiling { .. }), "{err}");
    assert!(err.to_string().contains("wide"));
}

#[test]
fn enumeration_is_empty_for_impossible_constraints() {
    let arch = ArchConfigBuilder::new(2, 512, 32).build().unwrap();
    let layer = ConvLayer::new("big", 256, 56, 56, 256).unwrap();
    let opts = TilingOptions {
        max_ops: 8, // cannot tile finely enough within 8 ops
        ..Default::default()
    };
    assert!(enumerate_tilings(&layer, &arch, &opts).is_empty());
}

#[test]
fn scheduler_surfaces_alloc_failure_when_pins_block_everything() {
    // Build a DFG whose single working set fits, then shrink the SPM
    // model by allocating around it is impossible — emulate by running
    // on an arch whose buffer is smaller than one working set.
    let roomy = ArchConfig::preset(ArchPreset::Arch4);
    let model = SystolicModel::new(&roomy);
    let layer = ConvLayer::new("l", 64, 16, 16, 64).unwrap();
    let factors = TilingFactors::normalized(&layer, 1, 1, 1, 1);
    let dfg = Dfg::build(&layer, factors, Dataflow::Kcs, &model, &roomy).unwrap();
    // Same DFG, much smaller buffer.
    let tiny = ArchConfigBuilder::new(2, 4096, 32).build().unwrap();
    let err = OooScheduler::new(&dfg, &tiny, &model)
        .schedule()
        .unwrap_err();
    assert!(matches!(err, SchedError::Alloc(_)), "{err}");
}

#[test]
fn spm_errors_carry_actionable_context() {
    let mut spm = SpmMemory::new(128);
    let t = TileId::Input { c: 0, s: 0 };
    match spm.allocate(t, 256, 1, &FlexerSpill) {
        Err(AllocError::TileTooLarge {
            requested,
            capacity,
        }) => {
            assert_eq!(requested, 256);
            assert_eq!(capacity, 128);
        }
        other => panic!("expected TileTooLarge, got {other:?}"),
    }
}

#[test]
fn dfg_rejects_out_of_range_tiling() {
    let arch = ArchConfig::preset(ArchPreset::Arch1);
    let model = SystolicModel::new(&arch);
    let layer = ConvLayer::new("huge", 512, 256, 256, 512).unwrap();
    let factors = TilingFactors::normalized(&layer, 512, 512, 64, 64);
    let err = Dfg::build(&layer, factors, Dataflow::Kcs, &model, &arch).unwrap_err();
    assert!(err.to_string().contains("operations"));
}

#[test]
fn network_construction_rejects_inconsistency() {
    assert!(Network::new("empty", vec![]).is_err());
    let dup = Network::new(
        "dup",
        vec![
            ConvLayer::new("x", 8, 8, 8, 8).unwrap(),
            ConvLayer::new("x", 8, 8, 8, 8).unwrap(),
        ],
    );
    assert!(dup.is_err());
}

#[test]
fn layer_errors_propagate_through_network_driver() {
    let arch = ArchConfigBuilder::new(2, 2048, 32).build().unwrap();
    let net = Network::new(
        "mixed",
        vec![
            ConvLayer::new("ok", 8, 8, 8, 8).unwrap(),
            ConvLayer::new("too-big", 512, 56, 56, 512).unwrap(),
        ],
    )
    .unwrap();
    let driver = Flexer::new(arch).with_options(SearchOptions::quick());
    let err = driver.schedule_network(&net).unwrap_err();
    assert!(err.to_string().contains("too-big"), "{err}");
}

#[test]
fn ooo_recovers_from_width_pressure_instead_of_failing() {
    // A buffer that holds one working set but never two: the scheduler
    // must degrade to single-op sets, not error out.
    let layer = ConvLayer::new("tight", 64, 8, 8, 64).unwrap();
    let factors = TilingFactors::normalized(&layer, 2, 1, 1, 1);
    // Working set: IN 4096 + WT 18432 + OT 2048 = 24576 bytes.
    let arch = ArchConfigBuilder::new(4, 30 * 1024, 32).build().unwrap();
    let model = SystolicModel::new(&arch);
    let dfg = Dfg::build(&layer, factors, Dataflow::Kcs, &model, &arch).unwrap();
    let sched = OooScheduler::new(&dfg, &arch, &model).schedule().unwrap();
    validate_schedule(&dfg, &sched).unwrap();
    // Cores beyond the first starve: utilization reflects the squeeze.
    assert!(sched.compute_utilization() <= 0.5);
}
