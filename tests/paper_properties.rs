//! Tests of the qualitative properties the paper reports — the claims
//! the reproduction must uphold regardless of absolute cycle counts.

use flexer::arch::SystolicModel;
use flexer::prelude::*;
use flexer::sched::{search_layer, search_layer_static, OooScheduler, StaticScheduler};
use flexer::sim::TrafficStats;

fn arch5() -> ArchConfig {
    ArchConfig::preset(ArchPreset::Arch5)
}

/// §5: "the regular structure of the loop dictates that all tiles of a
/// given type are reloaded the same number of times, i.e., there is no
/// reload variation for a given data type" — for loop-order schedules.
#[test]
fn static_schedules_have_uniform_reload_counts() {
    let arch = ArchConfig::preset(ArchPreset::Arch1);
    let model = SystolicModel::new(&arch);
    let layer = ConvLayer::new("u", 128, 28, 28, 128).unwrap();
    let factors = TilingFactors::normalized(&layer, 4, 4, 2, 2);
    for df in Dataflow::all() {
        let dfg = Dfg::build(&layer, factors, df, &model, &arch).unwrap();
        let st = StaticScheduler::new(&dfg, &arch, &model)
            .schedule()
            .unwrap();
        for kind in [TileKind::Input, TileKind::Weight] {
            assert!(
                !st.traffic().has_reload_variation(kind),
                "{df}: {kind} reloads vary in a loop-order schedule"
            );
        }
    }
}

/// §5: OoO schedules "contain different data flow patterns that result
/// in different reload counts for the same type of data".
#[test]
fn ooo_schedules_can_vary_reload_counts() {
    let arch = ArchConfig::preset(ArchPreset::Arch1);
    let model = SystolicModel::new(&arch);
    // conv4_2-class memory pressure so reloads actually happen; the
    // greedy OoO choices then produce irregular per-tile reload counts.
    let layer = ConvLayer::new("v", 512, 28, 28, 512).unwrap();
    let factors = TilingFactors::normalized(&layer, 8, 8, 2, 2);
    let variation = Dataflow::all().iter().any(|&df| {
        let dfg = Dfg::build(&layer, factors, df, &model, &arch).unwrap();
        let ooo = OooScheduler::new(&dfg, &arch, &model).schedule().unwrap();
        TileKind::all()
            .iter()
            .any(|&k| ooo.traffic().has_reload_variation(k))
    });
    assert!(variation, "no OoO schedule showed reload variation");
}

/// Figure 10: the "on-chip" reference (infinite buffer) lower-bounds
/// every real schedule's traffic, class by class where mandatory.
#[test]
fn onchip_reference_bounds_real_schedules() {
    let arch = arch5();
    let model = SystolicModel::new(&arch);
    let layer = ConvLayer::new("b", 128, 28, 28, 128).unwrap();
    let factors = TilingFactors::normalized(&layer, 4, 4, 2, 2);
    for df in [Dataflow::Kcs, Dataflow::Csk, Dataflow::Ksc] {
        let dfg = Dfg::build(&layer, factors, df, &model, &arch).unwrap();
        let reference = onchip_reference_traffic(&dfg);
        for sched in [
            OooScheduler::new(&dfg, &arch, &model).schedule().unwrap(),
            StaticScheduler::new(&dfg, &arch, &model)
                .schedule()
                .unwrap(),
        ] {
            let t: &TrafficStats = sched.traffic();
            assert!(t.total_bytes() >= reference.total_bytes());
            // Inputs and weights must each be brought in at least once;
            // outputs stored at least once.
            for class in [
                TrafficClass::Input,
                TrafficClass::Weight,
                TrafficClass::Output,
            ] {
                assert!(
                    t.class_bytes(class) >= reference.class_bytes(class),
                    "{df}: {class} below the mandatory minimum"
                );
            }
        }
    }
}

/// Figure 11: a stationary loop order shares exactly one data type
/// between NPUs; OoO schedules may share several during one layer.
#[test]
fn spatial_reuse_kind_diversity() {
    let arch = arch5();
    let model = SystolicModel::new(&arch);
    let layer = ConvLayer::new("s", 128, 28, 28, 128).unwrap();
    let factors = TilingFactors::normalized(&layer, 4, 4, 2, 2);
    // Input-stationary static order: only IN tiles shared.
    let dfg = Dfg::build(&layer, factors, Dataflow::Csk, &model, &arch).unwrap();
    let st = StaticScheduler::new(&dfg, &arch, &model)
        .schedule()
        .unwrap();
    assert!(st.spatial_reuse().events(TileKind::Input) > 0);
    assert_eq!(st.spatial_reuse().events(TileKind::Output), 0);
    // Weight-stationary static order: only WT tiles shared.
    let dfg = Dfg::build(&layer, factors, Dataflow::Kcs, &model, &arch).unwrap();
    let st = StaticScheduler::new(&dfg, &arch, &model)
        .schedule()
        .unwrap();
    assert!(st.spatial_reuse().events(TileKind::Weight) > 0);
    assert_eq!(st.spatial_reuse().events(TileKind::Input), 0);
    // The OoO schedule mixes patterns: at least two kinds shared.
    let ooo = OooScheduler::new(&dfg, &arch, &model).schedule().unwrap();
    assert!(
        ooo.spatial_reuse().kinds_shared() >= 2,
        "OoO shared only {} kind(s)",
        ooo.spatial_reuse().kinds_shared()
    );
}

/// The headline comparison on a layer the reproduction reliably wins:
/// Flexer beats the best static loop order on the paper's metric, with
/// a real latency speedup (cf. Figure 9, ResNet-50 1x1 layers).
#[test]
fn flexer_beats_baseline_on_bandwidth_bound_layer() {
    let resnet = networks::resnet50();
    let layer = resnet.layer_by_name("conv3_1_1").unwrap();
    let opts = SearchOptions::default();
    let ooo = search_layer(layer, &arch5(), &opts).unwrap();
    let st = search_layer_static(layer, &arch5(), &opts).unwrap();
    assert!(
        ooo.score < st.score,
        "metric: ooo {} vs static {}",
        ooo.score,
        st.score
    );
    assert!(
        st.schedule.latency() as f64 / ooo.schedule.latency() as f64 > 1.1,
        "speedup only {:.3}",
        st.schedule.latency() as f64 / ooo.schedule.latency() as f64
    );
}

/// Figure 9 (b): weighting transfers higher trades latency for
/// traffic.
#[test]
fn transfer_weighted_metric_shifts_the_tradeoff() {
    let vgg = networks::vgg16();
    let layer = scale_spatial(&vgg, 2)
        .layer_by_name("conv4_2")
        .unwrap()
        .clone();
    let arch = arch5();
    let default = search_layer(&layer, &arch, &SearchOptions::quick()).unwrap();
    let weighted = search_layer(
        &layer,
        &arch,
        &SearchOptions {
            metric: Metric::TransferWeighted { weight: 3.0 },
            ..SearchOptions::quick()
        },
    )
    .unwrap();
    assert!(weighted.schedule.transfer_bytes() <= default.schedule.transfer_bytes());
}

/// Output-stationary loop orders never move partial sums off-chip;
/// input-stationary orders with several channel tiles must.
#[test]
fn psum_traffic_follows_stationarity() {
    let arch = ArchConfig::preset(ArchPreset::Arch1);
    let model = SystolicModel::new(&arch);
    let layer = ConvLayer::new("p", 128, 16, 16, 64).unwrap();
    let factors = TilingFactors::normalized(&layer, 4, 4, 2, 2);
    let ksc = Dfg::build(&layer, factors, Dataflow::Ksc, &model, &arch).unwrap();
    let st = StaticScheduler::new(&ksc, &arch, &model)
        .schedule()
        .unwrap();
    assert_eq!(st.traffic().class_bytes(TrafficClass::Psum), 0);
    let csk = Dfg::build(&layer, factors, Dataflow::Csk, &model, &arch).unwrap();
    let st = StaticScheduler::new(&csk, &arch, &model)
        .schedule()
        .unwrap();
    assert!(st.traffic().class_bytes(TrafficClass::Psum) > 0);
}

/// More cores never slow a layer down under the OoO scheduler
/// (same buffer, same bandwidth).
#[test]
fn more_cores_do_not_hurt() {
    let layer = ConvLayer::new("c", 64, 28, 28, 64).unwrap();
    let opts = SearchOptions::quick();
    let two = search_layer(&layer, &ArchConfig::preset(ArchPreset::Arch2), &opts).unwrap();
    let four = search_layer(&layer, &ArchConfig::preset(ArchPreset::Arch6), &opts).unwrap();
    assert!(four.schedule.latency() <= two.schedule.latency());
}

/// A larger buffer never increases the best schedule's traffic.
#[test]
fn larger_buffer_does_not_increase_traffic() {
    let layer = ConvLayer::new("m", 128, 28, 28, 128).unwrap();
    let opts = SearchOptions::quick();
    let small = search_layer(&layer, &ArchConfig::preset(ArchPreset::Arch1), &opts).unwrap();
    let large = search_layer(&layer, &ArchConfig::preset(ArchPreset::Arch3), &opts).unwrap();
    assert!(large.schedule.transfer_bytes() <= small.schedule.transfer_bytes());
}
