//! Property-based integration tests: random layer geometries, tilings
//! and dataflows produce legal schedules with consistent accounting on
//! both schedulers.

use flexer::arch::SystolicModel;
use flexer::prelude::*;
use flexer::sched::{OooScheduler, StaticScheduler};
use proptest::prelude::*;

/// Random small-but-irregular layers across every operator kind:
/// dense convs (prime-ish extents, mixed kernels and strides),
/// matmuls, and grouped/depthwise convs whose channel counts are
/// group-aligned by construction.
fn layer_strategy() -> impl Strategy<Value = ConvLayer> {
    (
        0u32..4,  // kind selector: 0-1 dense, 2 matmul, 3 grouped
        1u32..96, // in channels
        5u32..28, // spatial extent
        1u32..96, // out channels
        prop_oneof![Just((1u32, 0u32)), Just((3, 1)), Just((5, 2))],
        1u32..=2, // stride
        1u32..=8, // group count (grouped only)
    )
        .prop_map(|(sel, c, hw, k, (kern, pad), stride, g)| match sel {
            2 => ConvLayer::matmul("rand", hw * hw, c, k).expect("generated matmuls are valid"),
            3 => {
                // Channels as whole multiples of the group count;
                // g == 1 exercises the normalize-to-dense path and
                // cpg == kpg == 1 the depthwise extreme.
                let (cpg, kpg) = (c % 12 + 1, k % 12 + 1);
                ConvLayerBuilder::new("rand", g * cpg, hw, hw, g * kpg)
                    .kernel(kern, kern)
                    .stride(stride)
                    .padding(pad)
                    .groups(g)
                    .build()
                    .expect("generated grouped layers are valid")
            }
            _ => ConvLayerBuilder::new("rand", c, hw, hw, k)
                .kernel(kern, kern)
                .stride(stride)
                .padding(pad)
                .build()
                .expect("generated layers are valid"),
        })
}

fn dataflow_strategy() -> impl Strategy<Value = Dataflow> {
    prop::sample::select(Dataflow::all().to_vec())
}

/// Every Table-1 preset plus the heterogeneous configuration.
fn arch_strategy() -> impl Strategy<Value = ArchConfig> {
    (0usize..=ArchPreset::all().len()).prop_map(|i| {
        if i == ArchPreset::all().len() {
            ArchConfig::hetero1()
        } else {
            ArchConfig::preset(ArchPreset::all()[i])
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn both_schedulers_produce_legal_schedules(
        layer in layer_strategy(),
        df in dataflow_strategy(),
        k in 1u32..6,
        c in 1u32..6,
        s in 1u32..4,
        arch in arch_strategy(),
    ) {
        let model = SystolicModel::new(&arch);
        let factors = TilingFactors::normalized(&layer, k, c, s, s);
        let dfg = Dfg::build(&layer, factors, df, &model, &arch).unwrap();

        let (ooo, program) = OooScheduler::new(&dfg, &arch, &model)
            .schedule_with_program()
            .unwrap();
        validate_schedule(&dfg, &ooo).unwrap();
        // The lowered command stream must be executable: in-bounds,
        // overlap-free placements, every operand resident at its
        // claimed address, every op executed exactly once.
        program.check(&dfg).unwrap();
        let st = StaticScheduler::new(&dfg, &arch, &model).schedule().unwrap();
        validate_schedule(&dfg, &st).unwrap();

        // Traffic accounting: every schedule moves at least the
        // infinite-buffer minimum and stores the full output exactly
        // at least once.
        let bound = onchip_reference_traffic(&dfg);
        for sched in [&ooo, &st] {
            prop_assert!(sched.transfer_bytes() >= bound.total_bytes());
            prop_assert!(
                sched.traffic().class_bytes(TrafficClass::Output)
                    >= bound.class_bytes(TrafficClass::Output)
            );
            // Compute time per core never exceeds the makespan.
            for core in 0..arch.cores() {
                prop_assert!(sched.core_busy(core) <= sched.latency());
            }
        }

        // Determinism.
        let again = OooScheduler::new(&dfg, &arch, &model).schedule().unwrap();
        prop_assert_eq!(ooo.latency(), again.latency());
        prop_assert_eq!(ooo.transfer_bytes(), again.transfer_bytes());
    }

    /// The DFG's structure is internally consistent for random
    /// geometries: psum chains cover exactly the multi-`c` tilings,
    /// operand byte sizes partition the tensors.
    #[test]
    fn dfg_structure_is_consistent(
        layer in layer_strategy(),
        df in dataflow_strategy(),
        k in 1u32..8,
        c in 1u32..8,
        s in 1u32..4,
    ) {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let model = SystolicModel::new(&arch);
        let factors = TilingFactors::normalized(&layer, k, c, s, s);
        let dfg = Dfg::build(&layer, factors, df, &model, &arch).unwrap();

        prop_assert_eq!(dfg.num_ops() as u64, factors.num_ops_for(&layer));
        let ready = dfg.initial_ready().count() as u64;
        if layer.kind().is_grouped() {
            // Grouped DFGs have no psum chains: everything is ready.
            prop_assert_eq!(ready, dfg.num_ops() as u64);
        } else {
            prop_assert_eq!(ready, u64::from(factors.k()) * u64::from(factors.spatial()));
        }

        // Weight/output tiles partition their tensors exactly.
        let elem = arch.element_size();
        prop_assert_eq!(dfg.unique_bytes(TileKind::Weight), layer.weight_bytes(elem));
        prop_assert_eq!(dfg.unique_bytes(TileKind::Output), layer.output_bytes(elem));
        // For unpadded stride-1 convs the input tiles cover the whole
        // tensor (halo may duplicate rows); strided convs may skip
        // rows, padded convs read fewer stored rows than the extent.
        if layer.stride() == 1 && layer.padding() == 0 {
            prop_assert!(dfg.unique_bytes(TileKind::Input) >= layer.input_bytes(elem));
        }

        // Every op's operands have positive sizes and uses.
        for op in dfg.ops() {
            for t in op.operands() {
                prop_assert!(dfg.tile_bytes(t) > 0);
                prop_assert!(dfg.initial_uses(t) > 0);
            }
        }
    }
}

/// The vendored offline proptest stand-in does not read
/// `.proptest-regressions` files, so the shrunken failure case recorded
/// in `tests/property_schedules.proptest-regressions` is replayed
/// explicitly: a 1-channel 5x5 layer with a 1x1 kernel at stride 2 —
/// the degenerate tiny-spatial geometry that once broke scheduling —
/// through the same legality chain as the property above, on every
/// architecture preset.
#[test]
fn regression_seed_tiny_strided_layer_schedules_legally() {
    let layer = ConvLayerBuilder::new("rand", 1, 5, 5, 1)
        .kernel(1, 1)
        .stride(2)
        .padding(0)
        .build()
        .unwrap();
    for preset in ArchPreset::all() {
        let arch = ArchConfig::preset(preset);
        let model = SystolicModel::new(&arch);
        let factors = TilingFactors::normalized(&layer, 1, 1, 2, 2);
        let dfg = Dfg::build(&layer, factors, Dataflow::Kcs, &model, &arch).unwrap();
        let (ooo, program) = OooScheduler::new(&dfg, &arch, &model)
            .schedule_with_program()
            .unwrap();
        validate_schedule(&dfg, &ooo).unwrap();
        program.check(&dfg).unwrap();
        let st = StaticScheduler::new(&dfg, &arch, &model)
            .schedule()
            .unwrap();
        validate_schedule(&dfg, &st).unwrap();
    }
}
