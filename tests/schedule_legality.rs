//! Cross-crate legality tests: every schedule either scheduler
//! produces — across layers, tilings, dataflows and architectures —
//! must pass the structural validator.

use flexer::arch::SystolicModel;
use flexer::prelude::*;
use flexer::sched::{OooScheduler, StaticScheduler};

fn check_both(layer: &ConvLayer, arch: &ArchConfig, factors: TilingFactors, df: Dataflow) {
    let model = SystolicModel::new(arch);
    let dfg = Dfg::build(layer, factors, df, &model, arch).unwrap();
    let ooo = OooScheduler::new(&dfg, arch, &model).schedule().unwrap();
    validate_schedule(&dfg, &ooo).unwrap_or_else(|e| panic!("ooo {df} {factors}: {e}"));
    let st = StaticScheduler::new(&dfg, arch, &model).schedule().unwrap();
    validate_schedule(&dfg, &st).unwrap_or_else(|e| panic!("static {df} {factors}: {e}"));
}

#[test]
fn all_dataflows_legal_on_all_presets() {
    let layer = ConvLayer::new("l", 64, 16, 16, 64).unwrap();
    for preset in ArchPreset::all() {
        let arch = ArchConfig::preset(preset);
        let factors = TilingFactors::normalized(&layer, 4, 2, 2, 2);
        for df in Dataflow::all() {
            check_both(&layer, &arch, factors, df);
        }
    }
}

#[test]
fn assorted_layer_geometries_are_legal() {
    let arch = ArchConfig::preset(ArchPreset::Arch5);
    let layers = [
        // Pointwise.
        ConvLayerBuilder::new("pw", 256, 14, 14, 512)
            .build()
            .unwrap(),
        // Strided 3x3.
        ConvLayerBuilder::new("s2", 64, 56, 56, 128)
            .kernel(3, 3)
            .stride(2)
            .padding(1)
            .build()
            .unwrap(),
        // Large-kernel stem.
        ConvLayerBuilder::new("stem", 3, 112, 112, 64)
            .kernel(7, 7)
            .stride(2)
            .padding(3)
            .build()
            .unwrap(),
        // Asymmetric extents.
        ConvLayerBuilder::new("asym", 48, 20, 36, 24)
            .kernel(3, 3)
            .padding(1)
            .build()
            .unwrap(),
    ];
    for layer in &layers {
        let tilings = flexer::tiling::enumerate_tilings(
            layer,
            &arch,
            &TilingOptions {
                max_tilings: 4,
                ..Default::default()
            },
        );
        assert!(!tilings.is_empty(), "{}", layer.name());
        for &factors in &tilings {
            check_both(layer, &arch, factors, Dataflow::Kcs);
            check_both(layer, &arch, factors, Dataflow::Csk);
        }
    }
}

#[test]
fn single_op_dfg_is_legal() {
    // A layer that fits on-chip untiled.
    let arch = ArchConfig::preset(ArchPreset::Arch4);
    let layer = ConvLayer::new("tiny", 16, 8, 8, 16).unwrap();
    let factors = TilingFactors::normalized(&layer, 1, 1, 1, 1);
    check_both(&layer, &arch, factors, Dataflow::Kcs);
}

#[test]
fn deep_psum_chains_are_legal() {
    // Heavy channel tiling: long accumulation chains, little else.
    let arch = ArchConfig::preset(ArchPreset::Arch1);
    let layer = ConvLayer::new("chain", 512, 8, 8, 32).unwrap();
    let factors = TilingFactors::normalized(&layer, 1, 16, 1, 1);
    for df in [Dataflow::Kcs, Dataflow::Ksc, Dataflow::Sck] {
        check_both(&layer, &arch, factors, df);
    }
}

#[test]
fn search_winners_are_legal() {
    let arch = ArchConfig::preset(ArchPreset::Arch6);
    let model = SystolicModel::new(&arch);
    let layer = ConvLayer::new("w", 96, 28, 28, 96).unwrap();
    let opts = SearchOptions::quick();
    let ooo = flexer::sched::search_layer(&layer, &arch, &opts).unwrap();
    let dfg = Dfg::build(&layer, ooo.factors, ooo.dataflow, &model, &arch).unwrap();
    validate_schedule(&dfg, &ooo.schedule).unwrap();
    let st = flexer::sched::search_layer_static(&layer, &arch, &opts).unwrap();
    let dfg = Dfg::build(&layer, st.factors, st.dataflow, &model, &arch).unwrap();
    validate_schedule(&dfg, &st.schedule).unwrap();
}

#[test]
fn every_op_of_real_layers_scheduled_exactly_once() {
    let arch = ArchConfig::preset(ArchPreset::Arch2);
    let model = SystolicModel::new(&arch);
    let net = scale_spatial(&networks::squeezenet(), 4);
    for layer in net.layers().iter().take(6) {
        let tilings = flexer::tiling::enumerate_tilings(
            layer,
            &arch,
            &TilingOptions {
                max_tilings: 2,
                ..Default::default()
            },
        );
        for &factors in &tilings {
            let dfg = Dfg::build(layer, factors, Dataflow::Csk, &model, &arch).unwrap();
            let sched = OooScheduler::new(&dfg, &arch, &model).schedule().unwrap();
            assert_eq!(sched.compute().len(), dfg.num_ops(), "{}", layer.name());
            validate_schedule(&dfg, &sched).unwrap();
        }
    }
}
