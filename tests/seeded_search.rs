//! Winner identity of the solver-seeded search: seeding installs an
//! analytical incumbent *before* the branch-and-bound drain, so it may
//! only change how much work the search does — never which schedule
//! wins. These properties drive random layer sets through seeded and
//! unseeded searches on both reference presets and both schedulers and
//! demand byte-identical winners, plus the mutation probe: an
//! *inadmissible* injected seed must be a typed error, not a silently
//! wrong "optimum".

use flexer::prelude::*;
use flexer::sched::{search_network, search_network_static, SchedError, SeedOptions};
use proptest::prelude::*;

/// Random small conv layers — modest extents so a whole network
/// searches quickly, irregular enough to exercise the bound model.
fn layer_strategy() -> impl Strategy<Value = ConvLayer> {
    (
        4u32..48, // in channels
        7u32..21, // spatial extent
        4u32..48, // out channels
        prop_oneof![Just((1u32, 0u32)), Just((3, 1))],
    )
        .prop_map(|(c, hw, k, (kern, pad))| {
            ConvLayerBuilder::new("rand", c, hw, hw, k)
                .kernel(kern, kern)
                .padding(pad)
                .build()
                .expect("generated layers are valid")
        })
}

fn seeded(opts: &SearchOptions, top_k: usize) -> SearchOptions {
    let mut s = opts.clone();
    s.seed = SeedOptions {
        enabled: true,
        top_k,
        inject: None,
    };
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Seeded and unseeded searches return byte-identical winners for
    /// every layer of a random network, on both reference presets,
    /// with both schedulers, at any seed breadth.
    #[test]
    fn seeding_never_changes_the_winner(
        layers in prop::collection::vec(layer_strategy(), 1..4),
        preset in prop::sample::select(vec![ArchPreset::Arch1, ArchPreset::Arch5]),
        top_k in 1usize..8,
    ) {
        let arch = ArchConfig::preset(preset);
        let opts = SearchOptions::quick();
        let opts_seeded = seeded(&opts, top_k);

        let plain = search_network(&layers, &arch, &opts).unwrap();
        let with_seed = search_network(&layers, &arch, &opts_seeded).unwrap();
        for (p, s) in plain.iter().zip(&with_seed) {
            prop_assert_eq!(&p.schedule, &s.schedule, "OoO winner drifted under seeding");
            prop_assert_eq!(p.factors, s.factors);
            prop_assert_eq!(p.dataflow, s.dataflow);
            prop_assert_eq!(p.score, s.score);
            prop_assert!(s.is_exact());
        }

        let plain = search_network_static(&layers, &arch, &opts).unwrap();
        let with_seed = search_network_static(&layers, &arch, &opts_seeded).unwrap();
        for (p, s) in plain.iter().zip(&with_seed) {
            prop_assert_eq!(&p.schedule, &s.schedule, "static winner drifted under seeding");
            prop_assert_eq!(p.factors, s.factors);
            prop_assert_eq!(p.dataflow, s.dataflow);
            prop_assert_eq!(p.score, s.score);
        }
    }

    /// Mutation probe: injecting a seed below the layer's best
    /// admissible lower bound is the typed
    /// [`SchedError::InadmissibleSeed`], never a schedule.
    #[test]
    fn inadmissible_injected_seed_is_a_typed_error(
        layer in layer_strategy(),
        preset in prop::sample::select(vec![ArchPreset::Arch1, ArchPreset::Arch5]),
    ) {
        let arch = ArchConfig::preset(preset);
        let mut opts = SearchOptions::quick();
        opts.seed = SeedOptions {
            enabled: true,
            top_k: 4,
            // No real schedule scores zero: always below every bound.
            inject: Some(0.0),
        };
        let err = search_network(std::slice::from_ref(&layer), &arch, &opts).unwrap_err();
        prop_assert!(
            matches!(err, SchedError::InadmissibleSeed { .. }),
            "expected InadmissibleSeed, got {err:?}"
        );
    }
}
