//! End-to-end warm start through the persistent schedule store: the
//! same network scheduled twice via [`Flexer::with_store`] — by two
//! *separate* driver instances, as two processes would — must yield
//! byte-identical per-layer results (modulo the store hit/miss
//! counters themselves), with the second run hitting the store for
//! every layer.

use flexer::prelude::*;
use flexer_sched::wire::encode_layer_result;
use flexer_sched::LayerSearchResult;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

static DIR_ID: AtomicU32 = AtomicU32::new(0);

/// A scratch store directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        Self(std::env::temp_dir().join(format!(
            "fxs-warm-{tag}-{}-{}",
            std::process::id(),
            DIR_ID.fetch_add(1, Ordering::Relaxed)
        )))
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Three distinct layer shapes, so every layer has its own store
/// entry (duplicate shapes share one entry by design: the first
/// searched winner is persisted and replayed for all of them).
fn distinct_net() -> Network {
    Network::new(
        "warm",
        vec![
            ConvLayer::new("c1", 16, 14, 14, 32).unwrap(),
            ConvLayer::new("c2", 32, 14, 14, 48).unwrap(),
            ConvLayer::new("c3", 48, 7, 7, 64).unwrap(),
        ],
    )
    .unwrap()
}

fn driver(dir: &Scratch) -> Flexer {
    Flexer::new(ArchConfig::preset(ArchPreset::Arch1))
        .with_options(SearchOptions::quick())
        .with_store(&dir.0)
        .unwrap()
}

/// The canonical wire encoding with the store counters masked out —
/// everything else (schedule, factors, dataflow, score, points, every
/// other stat) must match bit-for-bit between cold and warm runs.
fn masked_bytes(r: &LayerSearchResult) -> Vec<u8> {
    let mut r = r.clone();
    r.stats.store_hits = 0;
    r.stats.store_misses = 0;
    encode_layer_result(&r)
}

#[test]
fn warm_run_is_byte_identical_and_hits_every_layer() {
    let dir = Scratch::new("bytes");
    let net = distinct_net();

    let cold = driver(&dir).schedule_network(&net).unwrap();
    for l in cold.layers() {
        assert_eq!(l.stats.store_misses, 1, "{}: cold run must miss", l.layer);
        assert_eq!(l.stats.store_hits, 0);
    }

    // A fresh driver instance: its in-memory memo cache is empty, so
    // any reuse can only come from the persistent store.
    let warm_driver = driver(&dir);
    let warm = warm_driver.schedule_network(&net).unwrap();
    for l in warm.layers() {
        assert_eq!(l.stats.store_hits, 1, "{}: warm run must hit", l.layer);
        assert_eq!(l.stats.store_misses, 0);
    }
    let c = warm_driver.store().unwrap().counters();
    assert_eq!(c.hits, 3);
    assert_eq!(c.misses, 0);

    assert_eq!(cold.layers().len(), warm.layers().len());
    for (c, w) in cold.layers().iter().zip(warm.layers()) {
        assert_eq!(c.layer, w.layer, "store hits keep the requested name");
        assert_eq!(
            masked_bytes(c),
            masked_bytes(w),
            "{}: warm result must be byte-identical to cold",
            c.layer
        );
    }
}

#[test]
fn verify_network_warm_starts_and_reverifies_hits() {
    let dir = Scratch::new("verify");
    let net = distinct_net();

    // Seed only the OoO entries.
    driver(&dir).schedule_network(&net).unwrap();

    // `validate` is winner-neutral, so verify_network's OoO side hits
    // the seeded entries — and must re-verify them before trusting.
    let d = driver(&dir);
    let cmp = d.verify_network(&net).unwrap();
    for l in cmp.flexer().layers() {
        assert_eq!(
            l.stats.store_hits, 1,
            "{}: OoO side must warm-start",
            l.layer
        );
        assert!(
            l.stats.schedules_verified > 0,
            "{}: hit not re-verified",
            l.layer
        );
    }
    // The static side was never searched before: misses, now persisted.
    for l in cmp.baseline().layers() {
        assert_eq!(l.stats.store_misses, 1, "{}: static side is cold", l.layer);
    }

    // A second verify hits both sides.
    let again = driver(&dir).verify_network(&net).unwrap();
    for l in again
        .flexer()
        .layers()
        .iter()
        .chain(again.baseline().layers())
    {
        assert_eq!(l.stats.store_hits, 1, "{}: second verify must hit", l.layer);
        assert!(l.stats.schedules_verified > 0);
    }
}

#[test]
fn duplicate_shapes_share_one_entry() {
    let dir = Scratch::new("dup");
    let net = Network::new(
        "dup",
        vec![
            ConvLayer::new("a", 32, 14, 14, 32).unwrap(),
            ConvLayer::new("b", 32, 14, 14, 32).unwrap(),
        ],
    )
    .unwrap();

    let d = driver(&dir);
    let cold = d.schedule_network(&net).unwrap();
    assert_eq!(d.store().unwrap().len().unwrap(), 1, "one shape, one entry");
    for l in cold.layers() {
        assert_eq!(l.stats.store_misses, 1);
    }

    let warm = driver(&dir).schedule_network(&net).unwrap();
    for l in warm.layers() {
        assert_eq!(l.stats.store_hits, 1);
    }
    assert_eq!(warm.layers()[0].layer, "a");
    assert_eq!(warm.layers()[1].layer, "b");
    assert_eq!(
        warm.layers()[0].schedule,
        warm.layers()[1].schedule,
        "both duplicates replay the shared persisted winner"
    );
}

/// Like [`masked_bytes`] but with the whole stats block and the
/// evaluated counter cleared: across *nodes* the zoo networks contain
/// repeated layer shapes, and a cold run replays duplicates from the
/// in-memory memo (tiny stats) while a warm run serves them the
/// persisted leader's full-search stats. The winner — schedule,
/// factors, dataflow, score — must still match bit-for-bit.
fn winner_bytes(r: &LayerSearchResult) -> Vec<u8> {
    let mut r = r.clone();
    r.stats = SearchStats::default();
    r.evaluated = 0;
    encode_layer_result(&r)
}

/// Cross-node warm start through replication alone: node A schedules
/// the full diverse zoo (transformer, MobileNet-style, branching fire
/// net) on the heterogeneous arch; node B's store is then populated
/// purely through the replication primitives — `manifest`, `export`,
/// `ingest`, exactly what the fleet's `store_pull` op wraps — and a
/// fresh driver over it must answer every layer from the store with
/// zero searches and winner-byte-identical results.
#[test]
fn replicated_store_warm_starts_node_b_without_search() {
    use flexer_store::Ingest;

    let a = Scratch::new("node-a");
    let b = Scratch::new("node-b");
    let driver_on = |dir: &Scratch| {
        Flexer::new(ArchConfig::hetero1())
            .with_options(SearchOptions::quick())
            .with_store(&dir.0)
            .unwrap()
    };
    let nets = networks::diverse();

    // Node A computes everything the hard way.
    let node_a = driver_on(&a);
    let cold: Vec<NetworkResult> = nets
        .iter()
        .map(|net| node_a.schedule_network(net).unwrap())
        .collect();

    // Replicate A → B entry by entry. Node B never runs a search; its
    // store is fed exported wire bytes only, each re-validated and
    // freshly stored on ingest.
    let store_a = node_a.store().unwrap();
    let manifest_a = store_a.manifest().unwrap();
    assert!(!manifest_a.is_empty(), "node A persisted the zoo");
    {
        let store_b = ScheduleStore::open(&b.0).unwrap();
        for entry in &manifest_a {
            let bytes = store_a
                .export(entry.fingerprint)
                .unwrap()
                .expect("manifest entries export");
            assert_eq!(
                store_b.ingest(entry.fingerprint, &bytes).unwrap(),
                Ingest::Stored,
                "{}: fresh replica stores every entry",
                entry.fingerprint.hex()
            );
        }
        assert_eq!(
            store_b.manifest().unwrap(),
            manifest_a,
            "replication reaches manifest parity (lengths and checksums)"
        );
    }

    // A fresh driver on node B: empty memo, so every answer can only
    // come from the replicated store.
    let node_b = driver_on(&b);
    for (net, cold) in nets.iter().zip(&cold) {
        let warm = node_b.schedule_network(net).unwrap();
        assert_eq!(cold.layers().len(), warm.layers().len());
        for (c, w) in cold.layers().iter().zip(warm.layers()) {
            assert_eq!(w.stats.store_hits, 1, "{}: node B must hit", w.layer);
            assert_eq!(
                w.stats.store_misses, 0,
                "{}: node B must not search",
                w.layer
            );
            assert_eq!(
                winner_bytes(c),
                winner_bytes(w),
                "{}: node B winner must be byte-identical to node A",
                c.layer
            );
        }
    }
    let counters = node_b.store().unwrap().counters();
    assert_eq!(counters.misses, 0, "node B ran zero searches");
    assert!(
        counters.hits >= manifest_a.len() as u64,
        "node B answered from the replicated entries"
    );
    assert_eq!(counters.corrupt, 0);
}

#[test]
fn corrupt_entry_is_researched_and_repaired_transparently() {
    let dir = Scratch::new("repair");
    let net = distinct_net();
    driver(&dir).schedule_network(&net).unwrap();

    // Damage every entry on disk.
    for entry in std::fs::read_dir(&dir.0).unwrap().flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) == Some("fxs") {
            let mut bytes = std::fs::read(&path).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0x01;
            std::fs::write(&path, &bytes).unwrap();
        }
    }

    let d = driver(&dir);
    let r = d.schedule_network(&net).unwrap();
    for l in r.layers() {
        assert_eq!(
            l.stats.store_misses, 1,
            "{}: corrupt entry re-searches",
            l.layer
        );
    }
    assert_eq!(d.store().unwrap().counters().corrupt, 3);

    // The re-search repaired the store: next run hits cleanly.
    let warm = driver(&dir).schedule_network(&net).unwrap();
    for l in warm.layers() {
        assert_eq!(
            l.stats.store_hits, 1,
            "{}: repaired entry must hit",
            l.layer
        );
    }
}
