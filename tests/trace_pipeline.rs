//! End-to-end trace validation: the search pipeline's trace output is
//! byte-stable, thread-count invariant (with pruning off), exports
//! valid Chrome JSON, and pins an exact golden span tree for a fixed
//! one-layer search.

use flexer::prelude::*;
use flexer::sched::{search_layer_traced, search_network_traced};
use flexer::trace::{chrome, text};

/// The fixed search every test in this file agrees on: one small layer,
/// one dataflow, two tilings, serial — small enough that its span tree
/// can be pinned byte-for-byte.
fn golden_opts() -> SearchOptions {
    let mut opts = SearchOptions::quick();
    opts.threads = 1;
    opts.dataflows = vec![Dataflow::Csk];
    opts.tiling.max_tilings = 2;
    opts.seed.enabled = true;
    opts
}

fn golden_layer() -> ConvLayer {
    ConvLayer::new("g", 8, 8, 8, 8).unwrap()
}

/// The exact span tree of the golden search, span IDs and all. Any
/// change to span structure, naming, attribute order, lane assignment
/// or counter placement shows up here as a byte diff.
const GOLDEN_TREE: &str = "\
lane 0 \"search\"
  #0 search [0 +25] scheduler=ooo layers=1 prune=true
    #1 bound [1 +1] layer=g candidates=2
    #2 seed [3 +1] layer=g outcome=evaluated evaluated=2 score=1584000.0 gap_ppm=546875
    #3 layer [5 +19] name=g role=leader outcome=ok evaluated=2 score=1584000.0 latency=990 transfer_bytes=1600
      steps=1 @6
      sets_generated=1 @7
      sets_pruned=0 @8
      sets_evaluated=1 @9
      rollback_bytes=336 @10
      clone_bytes_avoided=40 @11
      evictions=0 @12
      compactions=0 @13
      schedules_verified=0 @14
      candidates_bounded=2 @15
      candidates_pruned=1 @16
      early_exits=0 @17
      store_hits=0 @18
      store_misses=0 @19
      store_evictions=0 @20
      store_corrupt=0 @21
      seed_gap_ppm=546875 @22
      seeded_cutoffs=1 @23
lane 1 \"g/0\"
  #4 candidate [0 +1] layer=g tiling=k1\u{b7}c2\u{b7}1x1 dataflow=Csk outcome=bounded bound=2048000.0
lane 2 \"g/1\"
  #5 candidate [0 +1] layer=g tiling=k1\u{b7}c1\u{b7}1x1 dataflow=Csk outcome=scheduled latency=990 transfer_bytes=1600 score=1584000.0
";

#[test]
fn golden_span_tree_is_pinned_byte_for_byte() {
    let arch = ArchConfig::preset(ArchPreset::Arch1);
    let (res, trace) = search_layer_traced(&golden_layer(), &arch, &golden_opts());
    res.unwrap();
    trace.check().unwrap();
    assert_eq!(text::render_tree(&trace), GOLDEN_TREE);
}

#[test]
fn chrome_export_is_byte_stable_across_runs() {
    let arch = ArchConfig::preset(ArchPreset::Arch1);
    let layer = golden_layer();
    let opts = golden_opts();
    let (ra, a) = search_layer_traced(&layer, &arch, &opts);
    let (rb, b) = search_layer_traced(&layer, &arch, &opts);
    let (ra, rb) = (ra.unwrap(), rb.unwrap());
    assert_eq!(ra.schedule.latency(), rb.schedule.latency());
    let (ja, jb) = (chrome::to_chrome_json(&a), chrome::to_chrome_json(&b));
    assert_eq!(ja, jb);
    // Minimal schema sanity on the shared bytes: the JSON object
    // format with complete ("ph":"X") and counter ("ph":"C") events.
    assert!(ja.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(ja.ends_with("]}"));
    assert!(ja.contains("\"ph\":\"X\""));
    assert!(ja.contains("\"ph\":\"C\""));
}

#[test]
fn thread_count_does_not_change_the_trace_when_pruning_is_off() {
    // With branch-and-bound pruning off there is no cross-candidate
    // coupling through the shared incumbent, so the trace must be
    // byte-identical at any worker count: lane ids come from work-queue
    // order, timestamps from per-lane logical clocks.
    let arch = ArchConfig::preset(ArchPreset::Arch2);
    let layers = vec![
        ConvLayer::new("a", 16, 10, 10, 16).unwrap(),
        ConvLayer::new("b", 16, 10, 10, 24).unwrap(),
    ];
    let mut serial = SearchOptions::quick();
    serial.prune = false;
    serial.threads = 1;
    serial.tiling.max_tilings = 3;
    let mut wide = serial.clone();
    wide.threads = 4;

    let (rs, ts) = search_network_traced(&layers, &arch, &serial);
    let (rw, tw) = search_network_traced(&layers, &arch, &wide);
    let (rs, rw) = (rs.unwrap(), rw.unwrap());
    let lat = |v: &[flexer::sched::LayerSearchResult]| -> u64 {
        v.iter().map(|r| r.schedule.latency()).sum()
    };
    assert_eq!(lat(&rs), lat(&rw));
    assert_eq!(text::render_tree(&ts), text::render_tree(&tw));
    assert_eq!(chrome::to_chrome_json(&ts), chrome::to_chrome_json(&tw));
}

#[test]
fn gantt_trace_of_the_winner_covers_every_core() {
    let arch = ArchConfig::preset(ArchPreset::Arch1);
    let (res, _) = search_layer_traced(&golden_layer(), &arch, &golden_opts());
    let res = res.unwrap();
    let gantt = schedule_trace(&res.schedule, "g");
    gantt.check().unwrap();
    // One lane per core that computed something, plus the DMA lane
    // (cores the schedule left idle contribute no events).
    let used: std::collections::BTreeSet<u32> =
        res.schedule.compute().iter().map(|o| o.core).collect();
    assert_eq!(gantt.lanes().len(), used.len() + 1);
    // Cycle timestamps are deterministic, so the timeline is too.
    let again = schedule_trace(&res.schedule, "g");
    assert_eq!(
        chrome::to_chrome_json(&gantt),
        chrome::to_chrome_json(&again)
    );
}

#[test]
fn traced_network_report_surfaces_the_trace_summary() {
    let arch = ArchConfig::preset(ArchPreset::Arch1);
    let net = Network::new("one", vec![golden_layer()]).unwrap();
    let driver = Flexer::new(arch).with_options(golden_opts());
    let traced = driver.trace_network(&net);
    traced.result.as_ref().unwrap();
    traced.trace.check().unwrap();
    assert!(traced.report().contains("trace:"));
    assert!(traced.chrome_json().contains("\"ph\":\"X\""));
    assert!(traced.span_tree().contains("#0 search"));
}
