//! Offline stand-in for `criterion`.
//!
//! Compiles the bench-definition API the workspace uses and *smoke
//! runs* each benchmark: every `iter`/`iter_batched` body executes a
//! small fixed number of times and the rough per-iteration time is
//! printed. There is no statistical analysis — real measurements in
//! this repository come from `crates/bench/src/bin/bench_json.rs`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How many times a smoke-run executes each routine.
const SMOKE_ITERS: u32 = 3;

/// Top-level bench registry and configuration (all knobs are no-ops).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// No-op: sample count is fixed in this stand-in.
    #[must_use]
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// No-op: there is no warm-up phase.
    #[must_use]
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// No-op: measurement time is not configurable.
    #[must_use]
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// No-op: CLI arguments are ignored.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }

    /// No-op summary hook.
    pub fn final_summary(&self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut bencher = Bencher {
        elapsed_ns: 0,
        iters: 0,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed_ns / u128::from(bencher.iters.max(1));
    println!(
        "bench {label}: ~{per_iter} ns/iter ({} smoke iters)",
        bencher.iters
    );
}

/// Timer handle passed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    elapsed_ns: u128,
    iters: u32,
}

impl Bencher {
    /// Runs `routine` a fixed small number of times.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..SMOKE_ITERS {
            let start = Instant::now();
            black_box(routine());
            self.elapsed_ns += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }

    /// Runs `routine` over fresh `setup` outputs, excluding setup time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..SMOKE_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed_ns += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }

    /// Like [`Bencher::iter_batched`] but the routine borrows its input.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        for _ in 0..SMOKE_ITERS {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.elapsed_ns += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }
}

/// Batch sizing hints; ignored by the smoke runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark over a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Runs a benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, &mut f);
        self
    }

    /// No-op throughput annotation.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Throughput annotations; ignored.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name plus parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Opaque value barrier, re-exported for compatibility.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a bench group function; both criterion forms are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(2) + 2));
        let mut group = c.benchmark_group("grp");
        group.bench_with_input(BenchmarkId::new("x", 4), &4u32, |b, &n| b.iter(|| n * 2));
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u32, |b, &n| {
            b.iter_batched(|| n, |v| v + 1, BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default()
            .sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        targets = sample_bench
    }

    #[test]
    fn group_macro_runs() {
        benches();
    }
}
