//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the subset of the API the workspace uses: `Mutex::new` and
//! a `lock()` that returns the guard directly (no `Result`). Poisoned
//! locks are transparently recovered, mirroring parking_lot's
//! poison-free semantics.

use std::fmt;

/// A mutual-exclusion primitive with parking_lot's panic-safe `lock()`
/// signature, implemented over [`std::sync::Mutex`].
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
