//! `any::<T>()` support for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_ints {
    ($($ty:ty),+) => {$(
        impl Arbitrary for $ty {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )+};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The canonical strategy for `A`.
#[must_use]
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_hits_both_values() {
        let mut rng = TestRng::new(4);
        let strat = any::<bool>();
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[usize::from(strat.sample(&mut rng))] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
