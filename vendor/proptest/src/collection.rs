//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive-exclusive bounds on a generated collection length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(self, rng: &mut TestRng) -> usize {
        debug_assert!(self.lo < self.hi);
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec`s with lengths drawn from a [`SizeRange`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generates vectors of `element` with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_bounds() {
        let strat = vec(0u32..5, 2..7);
        let mut rng = TestRng::new(5);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
