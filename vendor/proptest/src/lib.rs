//! Offline mini-proptest.
//!
//! A dependency-free, deterministic stand-in for the `proptest` crate
//! covering the surface this workspace uses: the [`proptest!`] macro
//! (with `#![proptest_config(..)]`), integer-range / tuple / `Just` /
//! `prop_oneof!` / `prop_map` strategies, `prop::collection::vec`,
//! `prop::sample::select`, `any::<T>()` and the `prop_assert*` macros.
//!
//! There is **no shrinking** and no persistence: each property runs a
//! fixed number of cases drawn from a deterministic per-test RNG
//! stream, and the first failure panics with the seed in the message.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};

/// Everything needed for typical property tests.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests; see the crate docs for the supported form.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal recursive expander for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                let __result: $crate::test_runner::TestCaseResult = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                __result
            });
        }
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::empty()$(.or($strat))+
    };
}

/// `assert!` that fails the current property case instead of panicking
/// directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: {:?} == {:?}",
                    __l,
                    __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l == *__r, $($fmt)+);
            }
        }
    };
}

/// `assert_ne!` flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l != *__r, "assertion failed: {:?} != {:?}", __l, __r);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Sampled tuples stay within their component ranges.
        #[test]
        fn tuples_in_range(
            pair in (1u32..5, 10u64..20),
            flag in any::<bool>(),
        ) {
            prop_assert!((1..5).contains(&pair.0));
            prop_assert!((10..20).contains(&pair.1));
            if flag {
                return Ok(());
            }
            prop_assert_eq!(pair.0, pair.0);
        }

        #[test]
        fn oneof_and_vec_compose(
            xs in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 1..9),
            pick in prop::sample::select(vec![7i32, 8, 9]),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 9);
            prop_assert!(xs.iter().all(|&x| x == 1 || x == 2));
            prop_assert!((7..=9).contains(&pick));
        }
    }
}
