//! Sampling from explicit value lists (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniform choice from a fixed, non-empty list.
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].clone()
    }
}

/// Chooses uniformly from `options`.
///
/// # Panics
///
/// Panics if `options` is empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() from an empty list");
    Select { options }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_only_listed_values() {
        let strat = select(vec![3u8, 5, 7]);
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            assert!([3u8, 5, 7].contains(&strat.sample(&mut rng)));
        }
    }
}
