//! The `Strategy` trait and the combinators the workspace uses.

use crate::test_runner::TestRng;

/// A generator of random values for property tests.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Chains a strategy-producing function (monadic bind).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discards values failing `pred` (bounded retries, then last draw
    /// wins — this mini runner never rejects a whole case).
    fn prop_filter<F>(self, _whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            sample: Box::new(move |rng| self.sample(rng)),
        }
    }
}

/// Strategy yielding a constant (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        let mut last = self.inner.sample(rng);
        for _ in 0..32 {
            if (self.pred)(&last) {
                break;
            }
            last = self.inner.sample(rng);
        }
        last
    }
}

/// Type-erased strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<T> {
    sample: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Uniform choice between arms, built by [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<Box<dyn Fn(&mut TestRng) -> T>>,
}

impl<T> Union<T> {
    /// Empty union; sampling panics until an arm is added.
    #[must_use]
    pub fn empty() -> Self {
        Self { arms: Vec::new() }
    }

    /// Adds an arm.
    #[must_use]
    pub fn or<S>(mut self, strat: S) -> Self
    where
        S: Strategy<Value = T> + 'static,
    {
        self.arms.push(Box::new(move |rng| strat.sample(rng)));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.arms.is_empty(), "prop_oneof! with no arms");
        let idx = rng.below(self.arms.len() as u64) as usize;
        (self.arms[idx])(rng)
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("arms", &self.arms.len())
            .finish()
    }
}

macro_rules! int_range_strategies {
    ($($ty:ty),+) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $ty
            }
        }
    )+};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($name:ident.$idx:tt),+);)+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..500 {
            let v = (5u32..17).sample(&mut rng);
            assert!((5..17).contains(&v));
            let w = (1u64..=2).sample(&mut rng);
            assert!((1..=2).contains(&w));
            let s = (-4i32..4).sample(&mut rng);
            assert!((-4..4).contains(&s));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let strat = (0u32..10, 0u32..10).prop_map(|(a, b)| a + b);
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            assert!(strat.sample(&mut rng) < 19);
        }
    }

    #[test]
    fn union_samples_every_arm() {
        let u = Union::empty().or(Just(1u8)).or(Just(2u8));
        let mut rng = TestRng::new(11);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
