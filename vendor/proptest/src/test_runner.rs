//! Deterministic case runner: config, RNG, and failure type.

use std::fmt;

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Creates a rejection (treated as a failure by this mini runner).
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Result type of one property case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic splitmix64 RNG.
///
/// Every run of the suite sees the same sequence for a given test
/// name, so failures reproduce without persistence files.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0)");
        // Multiply-shift bounded sampling; bias is negligible for
        // test-data generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Derives a stable 64-bit seed from a test name (FNV-1a).
#[must_use]
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `f` against `config.cases` deterministic RNG streams,
/// panicking (like a failed `assert!`) on the first failing case.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let base = seed_from_name(name);
    for case in 0..config.cases {
        let seed = base ^ u64::from(case).wrapping_mul(0x2545_f491_4f6c_dd1d);
        let mut rng = TestRng::new(seed);
        if let Err(err) = f(&mut rng) {
            panic!("property '{name}' failed at case {case} (seed {seed:#x}): {err}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_case_panics() {
        run_cases(&ProptestConfig::with_cases(4), "x", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
