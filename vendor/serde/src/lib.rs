//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names in both the macro
//! namespace (no-op derives) and the trait namespace, which is all the
//! workspace uses: `use serde::{Deserialize, Serialize};` followed by
//! derive-position usage. No runtime serialization is implemented.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching the real `serde::Serialize` name.
pub trait Serialize {}

/// Marker trait matching the real `serde::Deserialize` name.
pub trait Deserialize<'de> {}

/// Marker trait matching the real `serde::de::DeserializeOwned` name.
pub trait DeserializeOwned {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Namespace parity with the real crate's `serde::de`.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Namespace parity with the real crate's `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}
