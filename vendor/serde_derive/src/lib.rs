//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` for documentation
//! value only — nothing in the tree serializes at runtime — so these
//! derives expand to nothing. The `serde` helper attribute is accepted
//! (and ignored) for source compatibility with the real crate.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
